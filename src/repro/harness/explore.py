"""Design-space exploration: sweep config axes through the worker pool.

A *sweep spec* names a base config (preset, file, or inline document),
a workload list, an execution tier, and a set of axes — each axis a
dotted config path plus the values to try.  ``expand`` takes the
cartesian product into config *points* (one overlay-merged document
per point, content-digested), and ``run_sweep`` pushes every
(point, workload) cell through :func:`repro.harness.parallel.
run_cells` — the same crash-isolated pool the figure sweeps use.

Results live in a content-addressed store keyed by
``(program hash, config digest, tier, max_insts)``: a point that was
ever simulated — this run, a previous run, an interrupted run — is
served from disk and never simulated again.  That is what makes
thousand-point sweeps incremental: re-running a sweep after adding one
axis value only simulates the new column.  The ``explore-smoke`` CI
job runs a sweep twice and asserts the second pass is 100% cache hits
with zero new simulations.

``run_depth_bench`` is the committed experiment: the pipeline-depth
sweep (``frontend.depth``) over the CoreMark kernels, reproducing the
RV-IM100-style depth/frequency trade-off — cycles grow with depth
while the achievable clock grows sublinearly (``f = 1/(t_logic/depth +
t_latch)``), so relative performance has an interior optimum.  Cycle
counts are simulated, hence deterministic: the BENCH_explore.json gate
is exact equality, not a tolerance band.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping

from ..uarch import uconfig
from ..uarch.config import CoreConfig
from .parallel import run_cells
from .report import ExperimentResult

#: Result-record schema version; part of every store key so old
#: records are invisible after an incompatible change.
STORE_VERSION = 1

#: Hard ceiling on expanded points: a typo'd range axis should fail
#: loudly, not fill the disk.
MAX_POINTS = 100_000


class ExploreError(ValueError):
    """A sweep spec failed validation."""


# -- sweep spec --------------------------------------------------------------


@dataclass
class SweepAxis:
    """One swept dimension: a list of override sets to try.

    The scalar form (``path`` + ``values``/``range``) sweeps one knob.
    The linked form (``points``) sets several knobs per axis value —
    how "pipeline depth" sweeps honestly: a deeper frontend also pays
    a larger mispredict flush and a later decode-point correction, so
    one depth point sets all three knobs together.
    """

    label: str
    points: list[dict[str, Any]]  # one dict of dotted-path -> value each

    @property
    def values(self) -> list[Any]:
        """Scalar-form values (single-knob axes), else the point dicts."""
        if all(len(point) == 1 for point in self.points):
            return [next(iter(point.values())) for point in self.points]
        return list(self.points)

    @classmethod
    def single(cls, path: str, values: Iterable[Any]) -> "SweepAxis":
        return cls(path, [{path: value} for value in values])

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SweepAxis":
        unknown = set(payload) - {"path", "values", "range", "points",
                                  "label"}
        if unknown:
            raise ExploreError(f"axis: unknown key(s) "
                               f"{', '.join(sorted(unknown))}")
        if "points" in payload:
            if "path" in payload or "values" in payload \
                    or "range" in payload:
                raise ExploreError("axis: 'points' excludes path/"
                                   "values/range")
            points = payload["points"]
            if not isinstance(points, list) or not points or \
                    not all(isinstance(p, Mapping) and p
                            for p in points):
                raise ExploreError("axis: 'points' must be a non-empty "
                                   "list of non-empty mappings")
            label = str(payload.get("label")
                        or "+".join(sorted(points[0])))
            return cls(label, [dict(p) for p in points])
        path = payload.get("path")
        if not isinstance(path, str) or not path:
            raise ExploreError(f"axis: 'path' must be a dotted config "
                               f"path, got {path!r}")
        if ("values" in payload) == ("range" in payload):
            raise ExploreError(f"axis {path}: give exactly one of "
                               f"'values' or 'range'")
        if "values" in payload:
            values = payload["values"]
            if not isinstance(values, list) or not values:
                raise ExploreError(f"axis {path}: 'values' must be a "
                                   f"non-empty list")
            return cls.single(path, values)
        rng = payload["range"]
        if not isinstance(rng, Mapping) or \
                set(rng) - {"start", "stop", "step"}:
            raise ExploreError(f"axis {path}: 'range' takes start/stop"
                               f"/step")
        try:
            start, stop = int(rng["start"]), int(rng["stop"])
            step = int(rng.get("step", 1))
        except (KeyError, TypeError, ValueError) as exc:
            raise ExploreError(f"axis {path}: bad range: {exc}") from exc
        if step < 1 or stop < start:
            raise ExploreError(f"axis {path}: need step >= 1 and "
                               f"stop >= start")
        return cls.single(path, range(start, stop + 1, step))


@dataclass
class SweepSpec:
    """A full sweep description (the ``repro explore`` input file)."""

    base: str | Mapping[str, Any] = "xt910"
    extends: list[str] = field(default_factory=list)
    workloads: list[str] = field(default_factory=lambda: ["coremark-list"])
    axes: list[SweepAxis] = field(default_factory=list)
    tier: int = 2
    max_insts: int | None = None
    name: str = "sweep"

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SweepSpec":
        known = {"base", "extends", "workloads", "axes", "tier",
                 "max_insts", "name", "description"}
        unknown = set(payload) - known
        if unknown:
            raise ExploreError(
                f"sweep spec: unknown key(s) "
                f"{', '.join(sorted(unknown))} (known: "
                f"{', '.join(sorted(known))})")
        axes = [SweepAxis.from_dict(axis)
                for axis in payload.get("axes", [])]
        spec = cls(
            base=payload.get("base", "xt910"),
            extends=list(payload.get("extends", [])),
            workloads=list(payload.get("workloads", ["coremark-list"])),
            axes=axes,
            tier=int(payload.get("tier", 2)),
            max_insts=payload.get("max_insts"),
            name=str(payload.get("name", "sweep")))
        if spec.tier not in (1, 2, 3):
            raise ExploreError(f"sweep spec: tier must be 1, 2 or 3, "
                               f"not {spec.tier}")
        if not spec.workloads:
            raise ExploreError("sweep spec: 'workloads' must name at "
                               "least one bundled workload")
        return spec


def load_sweep(path: str) -> SweepSpec:
    """Read a sweep spec file (YAML or JSON, like config documents)."""
    return SweepSpec.from_dict(uconfig.load_doc(path))


# -- expansion ---------------------------------------------------------------


@dataclass
class ExplorePoint:
    """One expanded config point of a sweep."""

    index: int
    overrides: dict[str, Any]     # dotted path -> axis value
    doc: dict[str, Any]           # fully merged document
    digest: str                   # uconfig.config_digest of the doc

    @property
    def label(self) -> str:
        return f"p{self.index:04d}"


def expand(spec: SweepSpec) -> list[ExplorePoint]:
    """Cartesian-product the axes into validated config points.

    Every point document is schema-validated at expansion time, so an
    axis that walks a knob out of range fails before any simulation.
    """
    base_doc = uconfig.config_to_doc(
        uconfig.resolve_core(spec.base, tuple(spec.extends)))
    total = 1
    for axis in spec.axes:
        total *= len(axis.points)
    if total > MAX_POINTS:
        raise ExploreError(f"sweep expands to {total} points; the "
                           f"ceiling is {MAX_POINTS}")
    points: list[ExplorePoint] = []
    value_grid = itertools.product(*(axis.points for axis in spec.axes)) \
        if spec.axes else iter([()])
    for index, chosen in enumerate(value_grid):
        overrides: dict[str, Any] = {}
        for point_overrides in chosen:
            overrides.update(point_overrides)
        doc = uconfig.apply_overrides(base_doc, overrides)
        try:
            digest = uconfig.config_digest(doc)
        except uconfig.UconfigError as exc:
            raise ExploreError(
                f"point {index} ({overrides}): {exc}") from exc
        points.append(ExplorePoint(index, overrides, doc, digest))
    return points


# -- content-addressed result store ------------------------------------------


def default_store_dir() -> str:
    """``REPRO_EXPLORE_CACHE_DIR`` or ``~/.cache/repro-explore``."""
    override = os.environ.get("REPRO_EXPLORE_CACHE_DIR")
    if override:
        return override
    return os.path.join(os.path.expanduser("~"), ".cache",
                        "repro-explore")


def store_key(program_hash: str, config_digest: str, tier: int,
              max_insts: int | None) -> str:
    """The content address of one simulation result."""
    blob = (f"{STORE_VERSION}\x00{program_hash}\x00{config_digest}"
            f"\x00{tier}\x00{max_insts}")
    return hashlib.sha256(blob.encode()).hexdigest()


class ExploreStore:
    """Durable (program, config, tier)-addressed result records.

    Records are JSON files two directory levels deep (``ab/cdef...``),
    written atomically; a corrupt or truncated record is treated as a
    miss and overwritten, never fatal.
    """

    def __init__(self, root: str | None = None) -> None:
        self.root = root if root is not None else default_store_dir()
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], key[2:] + ".json")

    def get(self, key: str) -> dict[str, Any] | None:
        try:
            with open(self._path(key)) as handle:
                record = json.load(handle)
        except (OSError, json.JSONDecodeError):
            self.misses += 1
            return None
        if not isinstance(record, dict):
            self.misses += 1
            return None
        self.hits += 1
        return record

    def put(self, key: str, record: Mapping[str, Any]) -> None:
        path = self._path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w") as handle:
            json.dump(dict(record), handle, sort_keys=True)
        os.replace(tmp, path)

    def __len__(self) -> int:
        if not os.path.isdir(self.root):
            return 0
        return sum(1 for _dir, _sub, files in os.walk(self.root)
                   for fn in files if fn.endswith(".json"))


# -- cell execution ----------------------------------------------------------


def _program_hash(source: str, compress: bool) -> str:
    blob = f"{compress}\x00{source}".encode()
    return hashlib.sha256(blob).hexdigest()[:16]


def _find_workload(name: str) -> Any:
    from ..workloads import all_workloads

    for workload in all_workloads():
        if workload.name == name:
            return workload
    known = ", ".join(sorted(w.name for w in all_workloads()))
    raise ExploreError(f"unknown workload {name!r} (known: {known})")


def _explore_cell(workload_name: str, doc_json: str, tier: int,
                  max_insts: int | None) -> dict[str, Any]:
    """One (point, workload) simulation; module-level for pickling."""
    from .runner import run_on_core

    config = uconfig.config_from_doc(json.loads(doc_json))
    workload = _find_workload(workload_name)
    result = run_on_core(workload.program(), config, tier=tier,
                         max_insts=max_insts, partial_on_watchdog=True)
    stats = result.stats
    return {
        "cycles": stats.cycles,
        "instructions": stats.instructions,
        "ipc": round(stats.ipc, 6),
        "exit_code": result.exit_code,
        "watchdog_expired": int(result.watchdog is not None),
        "stats": stats.as_comparable(),
    }


# -- the sweep runner --------------------------------------------------------


@dataclass
class CellResult:
    """One simulated-or-cached (point, workload) outcome."""

    point: ExplorePoint
    workload: str
    record: dict[str, Any]
    cached: bool


@dataclass
class ExploreReport:
    """Everything one sweep run produced, with provenance counters."""

    name: str
    tier: int
    axes: list[SweepAxis]
    points: int
    results: list[CellResult]
    cache_hits: int
    simulated: int

    @property
    def cells(self) -> int:
        return len(self.results)

    def to_json_dict(self) -> dict[str, Any]:
        """MetricsRegistry-schema payload: the ``explore.*`` namespace
        flat dict plus the per-cell record table."""
        from ..obs.metrics import collect_explore

        return {
            "sweep": self.name,
            "tier": self.tier,
            "axes": [{"label": axis.label, "values": axis.values}
                     for axis in self.axes],
            "metrics": collect_explore(self).as_dict(),
            "cells": [{
                "point": cell.point.label,
                "workload": cell.workload,
                "overrides": cell.point.overrides,
                "config_digest": cell.point.digest,
                "cached": cell.cached,
                **{k: v for k, v in cell.record.items() if k != "stats"},
            } for cell in self.results],
        }

    def save(self, path: str) -> None:
        with open(path, "w") as handle:
            json.dump(self.to_json_dict(), handle, indent=2,
                      sort_keys=True)
            handle.write("\n")


def run_sweep(spec: SweepSpec, jobs: int | None = None,
              store: ExploreStore | None = None,
              timeout: float | None = None,
              progress: Callable[[str], None] | None = None
              ) -> ExploreReport:
    """Expand *spec*, serve repeated points from the store, simulate
    the rest through the worker pool, and persist every new record."""
    points = expand(spec)
    store = store if store is not None else ExploreStore()
    workloads = {name: _find_workload(name) for name in spec.workloads}

    plan: list[tuple[ExplorePoint, str, str]] = []   # point, workload, key
    results: dict[tuple[int, str], CellResult] = {}
    for point in points:
        for name, workload in workloads.items():
            key = store_key(
                _program_hash(workload.source, workload.compress),
                point.digest, spec.tier, spec.max_insts)
            record = store.get(key)
            if record is not None:
                results[point.index, name] = CellResult(
                    point, name, record, cached=True)
            else:
                plan.append((point, name, key))
    if progress is not None:
        progress(f"{spec.name}: {len(points)} points, "
                 f"{len(results)} cell(s) cached, {len(plan)} to "
                 f"simulate")

    if plan:
        cells = [(name, json.dumps(point.doc, sort_keys=True),
                  spec.tier, spec.max_insts)
                 for point, name, _key in plan]

        def persist(index: int, record: Any) -> None:
            point, name, key = plan[index]
            store.put(key, record)
            results[point.index, name] = CellResult(
                point, name, record, cached=False)

        run_cells(_explore_cell, cells, jobs=jobs, timeout=timeout,
                  on_result=persist)

    ordered = [results[point.index, name]
               for point in points for name in spec.workloads]
    simulated = sum(1 for cell in ordered if not cell.cached)
    return ExploreReport(
        name=spec.name, tier=spec.tier, axes=list(spec.axes),
        points=len(points), results=ordered,
        cache_hits=len(ordered) - simulated, simulated=simulated)


# -- the committed depth-sweep bench -----------------------------------------

#: Swept frontend depths (XT-910's own frontend is 7 of the 12 stages).
DEPTHS = [3, 5, 7, 9, 11, 13]

#: Latch/clock overhead as a fraction of total logic depth at the
#: reference point: the classic pipelining model ``f = 1/(t_logic/d +
#: t_latch)`` that gives the RV-IM100-style interior optimum.
LATCH_FRACTION = 0.10

#: The reference depth frequencies are normalized against.
_REF_DEPTH = 7

DEFAULT_TOLERANCE = 0.0     # cycles are simulated: the gate is exact

_QUICK_WORKLOADS = ["coremark-list"]
_FULL_WORKLOADS = ["coremark-list", "coremark-matrix", "coremark-state",
                   "coremark-crc"]


def frequency_scale(depth: int) -> float:
    """Relative achievable clock at *depth* (1.0 at the reference)."""
    ref_period = 1.0 / _REF_DEPTH + LATCH_FRACTION
    period = 1.0 / depth + LATCH_FRACTION
    return ref_period / period


def depth_point(depth: int) -> dict[str, Any]:
    """The linked knob set for one frontend depth.

    A deeper frontend pays proportionally on every redirect: each
    added stage is one more flush slot to drain *and* one more refill
    cycle before fetch re-steers (2 cycles/stage), and the decode-point
    correction for L1-miss taken branches lands later.  This is the
    RV-IM100 methodology — depth is not one knob but a family of
    penalties that move together.
    """
    return {
        "frontend.depth": depth,
        "frontend.mispredict_extra": 2 * max(0, depth - 3),
        "frontend.taken_bubble_miss": max(1, depth // 3),
    }


def depth_sweep_spec(quick: bool = False) -> SweepSpec:
    """The BENCH_explore.json sweep: frontend depth over CoreMark."""
    return SweepSpec(
        base="xt910",
        workloads=list(_QUICK_WORKLOADS if quick else _FULL_WORKLOADS),
        axes=[SweepAxis("frontend.depth",
                        [depth_point(depth) for depth in DEPTHS])],
        tier=2,
        name="depth-sweep")


def run_bench(quick: bool = False, repeat: int = 1,
              jobs: int | None = None,
              store: ExploreStore | None = None) -> dict[str, Any]:
    """Run the depth sweep and shape the BENCH_explore.json payload.

    ``repeat`` is accepted for CLI symmetry with the timing benches and
    ignored: cycle counts are simulated, not measured, so one run is
    exact.
    """
    del repeat
    spec = depth_sweep_spec(quick)
    report = run_sweep(spec, jobs=jobs, store=store)
    by_depth: dict[int, dict[str, Any]] = {}
    for cell in report.results:
        depth = int(cell.point.overrides["frontend.depth"])
        row = by_depth.setdefault(depth, {
            "depth": depth, "freq_rel": round(frequency_scale(depth), 6),
            "workloads": {}})
        row["workloads"][cell.workload] = {
            "cycles": cell.record["cycles"],
            "ipc": cell.record["ipc"],
        }
    rows = []
    for depth in sorted(by_depth):
        row = by_depth[depth]
        cycles = sum(w["cycles"] for w in row["workloads"].values())
        row["cycles_total"] = cycles
        # higher is better: work per unit time, normalized to depth 7
        row["perf_rel"] = round(row["freq_rel"] / cycles, 9)
        rows.append(row)
    ref = next(r for r in rows if r["depth"] == _REF_DEPTH)
    for row in rows:
        row["perf_rel"] = round(row["perf_rel"] / (ref["freq_rel"]
                                                   / ref["cycles_total"]
                                                   ), 6)
    best = max(rows, key=lambda r: r["perf_rel"])
    return {
        "bench": "explore-depth",
        "version": STORE_VERSION,
        "quick": quick,
        "workloads": spec.workloads,
        "latch_fraction": LATCH_FRACTION,
        "rows": rows,
        "best_depth": best["depth"],
        "cache_hits": report.cache_hits,
        "simulated": report.simulated,
    }


def render(payload: Mapping[str, Any]) -> str:
    lines = [f"== explore: pipeline-depth sweep "
             f"({', '.join(payload['workloads'])}) =="]
    lines.append(f"{'depth':>6}{'cycles':>12}{'freq_rel':>10}"
                 f"{'perf_rel':>10}")
    for row in payload["rows"]:
        marker = "  <- best" if row["depth"] == payload["best_depth"] \
            else ""
        lines.append(f"{row['depth']:>6}{row['cycles_total']:>12}"
                     f"{row['freq_rel']:>10.3f}{row['perf_rel']:>10.3f}"
                     f"{marker}")
    lines.append(f"(latch fraction {payload['latch_fraction']}: deeper "
                 f"pipes clock faster but pay more bubble cycles — the "
                 f"RV-IM100 trade-off shape)")
    return "\n".join(lines)


def save(payload: Mapping[str, Any], path: str) -> None:
    with open(path, "w") as handle:
        json.dump(dict(payload), handle, indent=1, sort_keys=True)
        handle.write("\n")


def load(path: str) -> dict[str, Any]:
    with open(path) as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict):
        raise ValueError(f"{path}: expected a JSON object")
    return payload


def check_regression(payload: Mapping[str, Any],
                     baseline: Mapping[str, Any],
                     tolerance: float = DEFAULT_TOLERANCE) -> list[str]:
    """Exact-equality gate: simulated cycles must match the committed
    baseline per depth per workload, and the trade-off shape must hold
    (cycles non-decreasing in depth).  ``tolerance`` is accepted for
    CLI symmetry; cycles are compared exactly regardless."""
    del tolerance
    failures: list[str] = []
    base_rows = {row["depth"]: row for row in baseline.get("rows", [])}
    quick = bool(payload.get("quick"))
    for row in payload["rows"]:
        base = base_rows.get(row["depth"])
        if base is None:
            failures.append(f"depth {row['depth']}: not in baseline")
            continue
        for name, measured in row["workloads"].items():
            expected = base.get("workloads", {}).get(name)
            if expected is None:
                if not quick:
                    failures.append(f"depth {row['depth']}: workload "
                                    f"{name} not in baseline")
                continue
            if measured["cycles"] != expected["cycles"]:
                failures.append(
                    f"depth {row['depth']} {name}: cycles "
                    f"{measured['cycles']} != baseline "
                    f"{expected['cycles']} (simulation is "
                    f"deterministic; this is a timing-model change)")
    cycles = [row["cycles_total"] for row in payload["rows"]]
    if cycles != sorted(cycles):
        failures.append(f"cycle counts not monotonic in depth: "
                        f"{cycles} (deeper frontend must not get "
                        f"cheaper)")
    return failures


# -- the harness experiment --------------------------------------------------


def smoke_spec() -> SweepSpec:
    """The CI smoke sweep: 2 axes on a tiny workload, >=100 points."""
    return SweepSpec(
        base="xt910",
        workloads=["blockchain-base"],
        axes=[
            SweepAxis("frontend.depth",
                      [depth_point(depth) for depth in DEPTHS]),
            SweepAxis.single("mem.dram.latency",
                             [80, 120, 160, 200, 240]),
            SweepAxis.single("mem.l1_prefetch.distance", [2, 4, 8, 16]),
        ],
        tier=2,
        name="explore-smoke")


def run_explore(quick: bool = True,
                jobs: int | None = None) -> ExperimentResult:
    """``EXPERIMENTS['explore']``: run the smoke sweep twice and prove
    the second pass is pure cache, then summarize the depth trade-off."""
    store = ExploreStore()
    spec = smoke_spec()
    first = run_sweep(spec, jobs=jobs, store=store)
    second = run_sweep(spec, jobs=jobs, store=store)
    bench = run_bench(quick=quick, jobs=jobs, store=store)

    result = ExperimentResult(
        experiment="explore",
        title="design-space sweeps: config points through the pool, "
              "content-addressed result reuse")
    result.add("sweep points", None, first.points, "configs",
               note="x".join(str(len(a.points)) for a in spec.axes))
    result.add("first-pass simulated", None, first.simulated, "cells")
    result.add("second-pass cache hits", None, second.cache_hits,
               "cells")
    result.add("best depth", None, bench["best_depth"], "stages",
               note="freq/cycles optimum")
    result.metric("points", first.points)
    result.metric("cells", first.cells)
    result.metric("first_pass_simulated", first.simulated)
    result.metric("first_pass_cache_hits", first.cache_hits)
    result.metric("second_pass_simulated", second.simulated)
    result.metric("second_pass_cache_hits", second.cache_hits)
    result.metric("depth_best", bench["best_depth"])
    result.raw = {
        "points": first.points,
        "first_simulated": first.simulated,
        "second_simulated": second.simulated,
        "second_hits": second.cache_hits,
        "second_all_cached": second.simulated == 0
        and second.cache_hits == second.cells,
        "bench": bench,
    }
    return result


__all__ = [
    "ExploreError", "SweepAxis", "SweepSpec", "load_sweep",
    "ExplorePoint", "expand", "ExploreStore", "store_key",
    "default_store_dir", "CellResult", "ExploreReport", "run_sweep",
    "depth_sweep_spec", "smoke_spec", "run_bench", "render", "save",
    "load", "check_regression", "run_explore", "frequency_scale",
    "DEFAULT_TOLERANCE", "DEPTHS",
]
