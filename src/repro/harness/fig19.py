"""Fig. 19: NBench performance normalized to Cortex-A73.

"Overall, the performance of XT-910 is on par with the ARM Cortex-A73"
— same methodology as Fig. 18 on the NBench-like suite.
"""

from __future__ import annotations

from ..workloads.nbench import nbench_suite
from .report import ExperimentResult, geomean
from .runner import run_on_core


def run_fig19(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        experiment="fig19",
        title="NBench-like kernels, XT-910 normalized to Cortex-A73")
    ratios = []
    for workload in nbench_suite():
        xt = run_on_core(workload.program(), "xt910")
        a73 = run_on_core(workload.program(), "cortex-a73")
        ratio = xt.ipc / a73.ipc
        ratios.append(ratio)
        result.add(workload.name, None, round(ratio, 3), "x A73",
                   note=f"IPC {xt.ipc:.2f} vs {a73.ipc:.2f}")
    result.add("geometric mean", 1.0, round(geomean(ratios), 3), "x A73",
               note="paper: 'on par with the ARM Cortex-A73'")
    result.raw = {"ratios": ratios}
    return result
