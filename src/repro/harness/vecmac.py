"""Section VII claims: vector MAC throughput and latencies.

* "the Cortex-A73 supports 8X 16-bit-MAC operation, and the computing
  power of XT-910 is 16X 16-bit MACs, so theoretically XT-910 has a 1X
  [i.e. 2x] performance improvement" — the peak comes straight from the
  slice datapath (2 slices x 128 result bits per cycle / 16 bits), and
  the measured value from the vwmacc dot-product kernel.
* "Most vector operations can be completed within 3-4 clock cycles.
  Multiplying ... floating point vectors takes 5 clock cycles. Integer
  division and floating-point division take 6 to 25 clock cycles." —
  checked against the timing-model configuration.
* XT-910 supports half-precision, which A73's NEON does not: the fp16
  kernel runs on xt910 and has no NEON equivalent.
"""

from __future__ import annotations

from ..uarch.presets import xt910
from ..workloads.vector import scalar_mac16, vec_mac16
from .report import ExperimentResult
from .runner import run_on_core

A73_NEON_MACS_PER_CYCLE = 8


def theoretical_macs_per_cycle(sew: int = 16) -> int:
    config = xt910()
    return config.fu.vec_slices * 128 // sew


def run_vecmac(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        experiment="vecmac", title="16-bit MAC throughput (section VII)")
    peak = theoretical_macs_per_cycle()
    result.add("peak 16-bit MACs/cycle", 16, peak, "",
               note="2 slices x 128 bits / 16")
    result.add("vs A73 NEON peak", 2.0, peak / A73_NEON_MACS_PER_CYCLE, "x",
               note="the paper's 2x AI advantage")

    n, passes = (512, 6) if quick else (512, 16)
    vec = run_on_core(vec_mac16(n=n, unroll_passes=passes).program(),
                      "xt910")
    scalar = run_on_core(scalar_mac16(n=n, unroll_passes=passes).program(),
                         "xt910")
    total_macs = n * passes
    result.add("measured vector MACs/cycle", None,
               round(total_macs / vec.cycles, 2), "",
               note="dot product is load-port bound: 2 operand loads "
                    "per 8 MACs caps it near 4/cycle warm")
    result.add("vector vs scalar MAC speedup", None,
               round(scalar.cycles / vec.cycles, 2), "x")

    fu = xt910().fu
    result.add("vector ALU latency", "3-4", fu.valu_latency, "cycles")
    result.add("vector FP mul latency", 5, fu.vfmul_latency, "cycles")
    result.add("vector divide latency", "6-25", fu.vdiv_latency, "cycles")
    return result
