"""Section I claims around blockchain acceleration.

The paper: the FPGA edition at 200 MHz delivers 20% higher per-core
blockchain (hash) performance than a Xeon 8163 at 2.5 GHz, and the
projected 2.0-2.5 GHz ASIC therefore lands at "12-15X higher
performance than the x86_64 ... counterpart".

What is reproducible in a model: (1) the internal consistency of that
arithmetic — ASIC/Xeon = (f_asic / f_fpga) x 1.2 = 12-15x, (2) the
ISA-level advantage the custom extensions contribute to the hash
kernel, measured as base-ISA vs XT-ISA cycles on the same core.  The
Xeon itself is represented by the paper's own measured relationship
(Xeon rate = FPGA rate / 1.2) — see DESIGN.md's substitution table.
"""

from __future__ import annotations

from ..workloads.blockchain import blockchain_kernel
from .report import ExperimentResult
from .runner import run_on_core

FPGA_MHZ = 200
ASIC_MHZ_RANGE = (2000, 2500)
PAPER_FPGA_OVER_XEON = 1.2


def run_blockchain(quick: bool = False) -> ExperimentResult:
    blocks = 8 if quick else 24
    result = ExperimentResult(
        experiment="blockchain",
        title="blockchain (hash) acceleration claims (section I)")
    xt = run_on_core(blockchain_kernel(xt=True, blocks=blocks).program(),
                     "xt910")
    base = run_on_core(blockchain_kernel(xt=False, blocks=blocks).program(),
                       "xt910")
    result.add("XT-extension speedup on hash", None,
               round(base.cycles / xt.cycles, 3), "x",
               note="srriw rotates vs shift/or sequences")

    cycles_per_block = xt.cycles / blocks
    fpga_rate = FPGA_MHZ * 1e6 / cycles_per_block
    xeon_rate = fpga_rate / PAPER_FPGA_OVER_XEON
    for mhz in ASIC_MHZ_RANGE:
        asic_rate = mhz * 1e6 / cycles_per_block
        result.add(f"ASIC@{mhz / 1000:.1f}GHz vs Xeon",
                   12.0 if mhz == ASIC_MHZ_RANGE[0] else 15.0,
                   round(asic_rate / xeon_rate, 1), "x",
                   note="frequency scaling x the paper's 1.2x FPGA margin")
    result.add("hash blocks/s at 200MHz (FPGA)", None,
               round(fpga_rate), "blocks/s",
               note=f"{cycles_per_block:.0f} cycles/block")
    return result
