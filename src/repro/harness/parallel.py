"""Process-pool execution of independent harness cells.

Every figure sweep and the RAS campaign decompose into independent
(core, workload)-style cells: each cell builds its own program and
emulator, runs, and returns a small picklable result.  Python threads
would serialize on the GIL (the emulator is pure Python), so the
parallel path uses processes; cell functions must therefore be
module-level and take primitive arguments (workload *names*, core
*names*, seeds) — children rebuild the heavyweight objects themselves.

``jobs=None`` / ``jobs<=1`` runs the cells serially in-process, which
keeps single-cell debugging (pdb, coverage, exceptions with full
context) trivial and is the default everywhere.
"""

from __future__ import annotations

import os
from collections.abc import Callable, Iterable
from concurrent.futures import ProcessPoolExecutor


def default_jobs() -> int:
    """A sensible ``--jobs`` value for this machine."""
    return max(1, os.cpu_count() or 1)


def _invoke(payload):
    fn, args = payload
    return fn(*args)


def run_cells(fn: Callable, cells: Iterable[tuple], jobs: int | None = None,
              ) -> list:
    """Run ``fn(*cell)`` for every cell, preserving input order.

    With ``jobs`` > 1 the cells are fanned out over a process pool
    (``fn`` and each cell must be picklable); otherwise they run
    serially in this process.  A cell that raises propagates the
    exception either way — callers that want per-cell containment
    (e.g. the RAS campaign) catch inside the cell function.
    """
    cells = list(cells)
    if jobs is None or jobs <= 1 or len(cells) <= 1:
        return [fn(*cell) for cell in cells]
    workers = min(jobs, len(cells))
    payloads = [(fn, cell) for cell in cells]
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(_invoke, payloads))


__all__ = ["run_cells", "default_jobs"]
