"""Process-pool execution of independent harness cells.

Every figure sweep and the RAS campaign decompose into independent
(core, workload)-style cells: each cell builds its own program and
emulator, runs, and returns a small picklable result.  Python threads
would serialize on the GIL (the emulator is pure Python), so the
parallel path uses processes; cell functions must therefore be
module-level and take primitive arguments (workload *names*, core
*names*, seeds) — children rebuild the heavyweight objects themselves.

``jobs=None`` / ``jobs<=1`` runs the cells serially in-process, which
keeps single-cell debugging (pdb, coverage, exceptions with full
context) trivial and is the default everywhere.

Failure handling is collect-and-report: a failing cell never aborts
its siblings.  Every cell runs to its own outcome, and ``run_cells``
then raises one :class:`CellFailure` naming each failed cell — which
workload/config tuple, which function, and the serialized error (or
crash/timeout classification from the worker pool).  The parallel path
runs on :class:`repro.service.pool.WorkerPool`, so a cell that
segfaults or hangs is reaped and attributed instead of taking the
whole sweep down with a ``BrokenProcessPool``.
"""

from __future__ import annotations

import os
import reprlib
from collections.abc import Callable, Iterable
from dataclasses import dataclass, field

#: failed cells spelled out in a CellFailure message before truncating
_REPORT_LIMIT = 8


def default_jobs() -> int:
    """A sensible ``--jobs`` value for this machine."""
    return max(1, os.cpu_count() or 1)


@dataclass
class CellError:
    """One failed cell: which cell, which function, what happened."""

    index: int
    fn: str
    cell: tuple
    status: str                      # "error" | "crash" | "timeout"
    error: dict = field(default_factory=dict)

    def render(self) -> str:
        args = reprlib.repr(self.cell)
        what = (f"{self.error.get('type', self.error.get('kind', '?'))}: "
                f"{self.error.get('message', '?')}"
                if self.status == "error" else self.status)
        return f"cell {self.index} {self.fn}{args}: {what}"


class CellFailure(RuntimeError):
    """One or more cells failed; siblings completed first.

    ``failures`` holds a :class:`CellError` per failed cell (input
    order), so callers can attribute every failure to its workload and
    configuration instead of seeing only whichever exception happened
    to surface first.
    """

    def __init__(self, failures: list[CellError], total: int) -> None:
        self.failures = failures
        self.total = total
        lines = [f"{len(failures)} of {total} cells failed:"]
        lines += [f"  {f.render()}" for f in failures[:_REPORT_LIMIT]]
        if len(failures) > _REPORT_LIMIT:
            lines.append(f"  ... and {len(failures) - _REPORT_LIMIT} more")
        super().__init__("\n".join(lines))


def _invoke(payload):
    fn, args = payload
    return fn(*args)


def _fn_name(fn: Callable) -> str:
    return getattr(fn, "__name__", repr(fn))


def run_cells(fn: Callable, cells: Iterable[tuple], jobs: int | None = None,
              timeout: float | None = None,
              on_result: Callable[[int, object], None] | None = None) -> list:
    """Run ``fn(*cell)`` for every cell, preserving input order.

    With ``jobs`` > 1 the cells are fanned out over crash-isolated
    worker processes (``fn`` and each cell must be picklable) with
    ``timeout`` as the per-cell wall-clock budget; otherwise they run
    serially in this process.  Either way every cell runs to its own
    outcome before failures are reported: if any cell raised (or, in
    parallel mode, crashed its worker or hit the deadline), one
    aggregated :class:`CellFailure` is raised naming each failed cell
    with its function and arguments.  Callers that want per-cell
    containment *as data* (e.g. the RAS campaign) catch inside the
    cell function as before.

    ``on_result(index, value)`` is invoked in the parent, in completion
    order, for every cell that succeeds — the explore runner uses it to
    persist finished sweep points to its result store as they land, so
    an interrupted sweep keeps everything already simulated.  A raising
    callback is a caller bug and propagates.
    """
    # Imported lazily: repro.service pulls in repro.harness (the job
    # worker runs cells through run_on_core), so a module-level import
    # here would be circular.
    from ..service.pool import WorkerPool, serialize_exception

    cells = list(cells)
    name = _fn_name(fn)
    results: list = [None] * len(cells)
    failures: list[CellError] = []
    if jobs is None or jobs <= 1 or len(cells) <= 1:
        last_exc: Exception | None = None
        for index, cell in enumerate(cells):
            try:
                results[index] = fn(*cell)
            except Exception as exc:
                last_exc = exc
                failures.append(CellError(
                    index, name, tuple(cell), "error",
                    serialize_exception(exc)))
                continue
            if on_result is not None:
                on_result(index, results[index])
        if failures:
            raise CellFailure(failures, len(cells)) from last_exc
        return results
    workers = min(jobs, len(cells))
    with WorkerPool(workers, _invoke) as pool:
        for index, cell in enumerate(cells):
            pool.submit(index, (fn, tuple(cell)), timeout=timeout)
        for key, outcome in pool.drain():
            index = int(key)  # submitted as int; Hashable in the pool API
            if outcome.ok:
                results[index] = outcome.value
                if on_result is not None:
                    on_result(index, outcome.value)
            elif outcome.status == "error":
                failures.append(CellError(index, name, tuple(cells[index]),
                                          "error", outcome.value))
            elif outcome.status == "crash":
                failures.append(CellError(
                    index, name, tuple(cells[index]), "crash",
                    {"type": "WorkerCrash",
                     "message": f"worker process died "
                                f"(exit code {outcome.exitcode})"}))
            else:
                failures.append(CellError(
                    index, name, tuple(cells[index]), "timeout",
                    {"type": "Timeout",
                     "message": f"cell exceeded its {timeout}s "
                                f"wall-clock budget"}))
    if failures:
        failures.sort(key=lambda f: f.index)
        raise CellFailure(failures, len(cells))
    return results


__all__ = ["run_cells", "default_jobs", "CellFailure", "CellError"]
