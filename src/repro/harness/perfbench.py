"""Emulator / harness performance benchmark (``python -m repro bench``).

Times the functional emulator in both execution modes — the precise
per-step interpreter ("before") and the block-translation fast path
("after") — on the CoreMark/EEMBC/NBench kernels, plus the end-to-end
harness path (emulator + 12-stage timing model) per kernel, and writes
the numbers to ``BENCH_emulator.json`` so the repo's perf trajectory is
measured rather than asserted.

The committed JSON doubles as the CI regression baseline: the bench CI
job re-runs ``bench --quick`` and fails when fast-mode emulator MIPS
drops more than the tolerance (default 30%) below the checked-in
numbers.  MIPS is computed from the best of ``repeat`` runs to shave
scheduler noise; absolute numbers still vary across machines, which is
why the gate is a ratio, not a floor.
"""

from __future__ import annotations

import json
import time

from ..sim.emulator import Emulator
from ..workloads import coremark_suite, eembc_suite, nbench_suite
from .report import geomean
from .runner import run_on_core

#: JSON schema version of BENCH_emulator.json
SCHEMA = 1
DEFAULT_TOLERANCE = 0.30


def _workloads(quick: bool):
    suites = [coremark_suite()]
    if not quick:
        suites += [eembc_suite(), nbench_suite()]
    return [w for suite in suites for w in suite]


def _lookup(name: str):
    for workload in _workloads(quick=False):
        if workload.name == name:
            return workload
    raise KeyError(name)


def _time_emulator(workload, fast: bool, repeat: int) -> tuple[int, float]:
    """(retired instructions, best-of-*repeat* seconds) for one run."""
    best = float("inf")
    insts = 0
    for _ in range(repeat):
        emulator = Emulator(workload.program())
        start = time.perf_counter()
        emulator.run(fast=fast)
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
        insts = emulator.state.instret
    return insts, best


def _time_harness(workload, repeat: int) -> float:
    """Best-of-*repeat* wall-clock of emulator + timing model."""
    best = float("inf")
    for _ in range(repeat):
        program = workload.program()
        start = time.perf_counter()
        run_on_core(program, "xt910")
        best = min(best, time.perf_counter() - start)
    return best


def bench_workload(name: str, repeat: int = 3) -> dict:
    """Before/after numbers for one kernel."""
    workload = _lookup(name)
    insts, precise_s = _time_emulator(workload, fast=False, repeat=repeat)
    _, fast_s = _time_emulator(workload, fast=True, repeat=repeat)
    harness_s = _time_harness(workload, repeat=repeat)
    return {
        "insts": insts,
        "precise_s": round(precise_s, 6),
        "fast_s": round(fast_s, 6),
        "precise_mips": round(insts / precise_s / 1e6, 4),
        "fast_mips": round(insts / fast_s / 1e6, 4),
        "speedup": round(precise_s / fast_s, 3),
        "harness_s": round(harness_s, 6),
    }


def run_bench(quick: bool = False, repeat: int = 3) -> dict:
    """Benchmark every kernel; returns the BENCH_emulator.json payload."""
    workloads = _workloads(quick)
    results = {w.name: bench_workload(w.name, repeat=repeat)
               for w in workloads}
    coremark = [r for name, r in results.items()
                if name.startswith("coremark")]
    payload = {
        "schema": SCHEMA,
        "bench": "emulator",
        "quick": quick,
        "repeat": repeat,
        "workloads": results,
        "summary": {
            "geomean_speedup": round(
                geomean([r["speedup"] for r in results.values()]), 3),
            "coremark_precise_mips": round(
                geomean([r["precise_mips"] for r in coremark]), 4),
            "coremark_fast_mips": round(
                geomean([r["fast_mips"] for r in coremark]), 4),
            "coremark_speedup": round(
                geomean([r["speedup"] for r in coremark]), 3),
            "harness_wall_s": round(
                sum(r["harness_s"] for r in results.values()), 3),
        },
    }
    return payload


def check_regression(payload: dict, baseline: dict,
                     tolerance: float = DEFAULT_TOLERANCE) -> list[str]:
    """Compare a fresh bench run against the committed baseline.

    Returns human-readable failure strings (empty = no regression).
    The gate is fast-mode emulator throughput: absolute MIPS shifting
    with the host is expected, a >``tolerance`` drop is not.
    """
    failures = []
    base_summary = baseline.get("summary", {})
    for key in ("coremark_fast_mips",):
        base = base_summary.get(key)
        if not base:
            continue
        current = payload["summary"][key]
        floor = base * (1.0 - tolerance)
        if current < floor:
            failures.append(
                f"{key} regressed: {current} < {floor:.4f} "
                f"(baseline {base}, tolerance {tolerance:.0%})")
    base_speedup = base_summary.get("coremark_speedup")
    if base_speedup:
        current = payload["summary"]["coremark_speedup"]
        floor = base_speedup * (1.0 - tolerance)
        if current < floor:
            failures.append(
                f"coremark_speedup regressed: {current} < {floor:.3f} "
                f"(baseline {base_speedup}, tolerance {tolerance:.0%})")
    return failures


def render(payload: dict) -> str:
    """Terminal table for the bench payload."""
    lines = [f"{'workload':18s}{'insts':>9}{'precise':>10}{'fast':>10}"
             f"{'speedup':>9}{'harness':>10}",
             f"{'':18s}{'':>9}{'MIPS':>10}{'MIPS':>10}"
             f"{'':>9}{'s':>10}"]
    for name, r in payload["workloads"].items():
        lines.append(
            f"{name:18s}{r['insts']:>9}{r['precise_mips']:>10.2f}"
            f"{r['fast_mips']:>10.2f}{r['speedup']:>8.2f}x"
            f"{r['harness_s']:>10.3f}")
    s = payload["summary"]
    lines.append(
        f"{'geomean':18s}{'':>9}{s['coremark_precise_mips']:>10.2f}"
        f"{s['coremark_fast_mips']:>10.2f}{s['coremark_speedup']:>8.2f}x"
        f"{s['harness_wall_s']:>10.3f}")
    lines.append("(precise/fast MIPS over the coremark kernels; harness "
                 "column is emulator + xt910 timing model wall-clock)")
    return "\n".join(lines)


def save(payload: dict, path: str) -> None:
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load(path: str) -> dict:
    with open(path) as handle:
        return json.load(handle)


__all__ = ["run_bench", "bench_workload", "check_regression", "render",
           "save", "load", "DEFAULT_TOLERANCE", "SCHEMA"]
