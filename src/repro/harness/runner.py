"""Glue: run an assembled program through emulator + timing model."""

from __future__ import annotations

from dataclasses import dataclass

from ..asm.program import Program
from ..mem.hierarchy import MemoryHierarchy
from ..sim.emulator import Emulator
from ..uarch.config import CoreConfig
from ..uarch.core import PipelineModel
from ..uarch.presets import get_preset
from ..uarch.stats import CoreStats


@dataclass
class RunResult:
    """Functional + timing outcome of one program on one core."""

    core: str
    stats: CoreStats
    exit_code: int
    stdout: str
    pipeline: PipelineModel

    @property
    def ipc(self) -> float:
        return self.stats.ipc

    @property
    def cycles(self) -> int:
        return self.stats.cycles


def run_on_core(program: Program, core: CoreConfig | str,
                max_steps: int | None = None,
                hierarchy: MemoryHierarchy | None = None,
                fast: bool = True) -> RunResult:
    """Execute *program* functionally and time it on *core*.

    ``fast`` feeds the timing model through the block-translation
    cache (``Emulator.fast_trace``); the retired stream is identical
    to the precise interpreter, so timing results do not change.
    """
    config = get_preset(core) if isinstance(core, str) else core
    emulator = Emulator(program)
    pipeline = PipelineModel(config, hierarchy=hierarchy)
    trace = (emulator.fast_trace(max_steps) if fast
             else emulator.trace(max_steps))
    stats = pipeline.run(trace)
    if emulator.exit_code not in (0, None):
        raise RuntimeError(
            f"program exited with {emulator.exit_code} on {config.name}; "
            f"stdout: {emulator.stdout!r}")
    stats.decode_cache_hits = emulator.decode_cache_hits
    stats.decode_cache_misses = emulator.decode_cache_misses
    if emulator._blocks is not None:
        stats.extra.update(emulator._blocks.counters())
    return RunResult(core=config.name, stats=stats,
                     exit_code=emulator.exit_code or 0,
                     stdout=emulator.stdout, pipeline=pipeline)


def compare_cores(program: Program, cores: list[CoreConfig | str],
                  max_steps: int | None = None,
                  fast: bool = True) -> dict[str, RunResult]:
    """Run the same binary on several cores (the paper's methodology)."""
    return {result.core: result
            for result in (run_on_core(program, core, max_steps, fast=fast)
                           for core in cores)}
