"""Glue: run an assembled program through emulator + timing model."""

from __future__ import annotations

from dataclasses import dataclass

from ..asm.program import Program
from ..mem.hierarchy import MemoryHierarchy
from ..sim.emulator import Emulator
from ..uarch.config import CoreConfig
from ..uarch.core import PipelineModel
from ..uarch.presets import get_preset
from ..uarch.stats import CoreStats


@dataclass
class RunResult:
    """Functional + timing outcome of one program on one core."""

    core: str
    stats: CoreStats
    exit_code: int
    stdout: str
    pipeline: PipelineModel

    @property
    def ipc(self) -> float:
        return self.stats.ipc

    @property
    def cycles(self) -> int:
        return self.stats.cycles


def run_on_core(program: Program, core: CoreConfig | str,
                max_steps: int | None = None,
                hierarchy: MemoryHierarchy | None = None) -> RunResult:
    """Execute *program* functionally and time it on *core*."""
    config = get_preset(core) if isinstance(core, str) else core
    emulator = Emulator(program)
    pipeline = PipelineModel(config, hierarchy=hierarchy)
    stats = pipeline.run(emulator.trace(max_steps))
    if emulator.exit_code not in (0, None):
        raise RuntimeError(
            f"program exited with {emulator.exit_code} on {config.name}; "
            f"stdout: {emulator.stdout!r}")
    return RunResult(core=config.name, stats=stats,
                     exit_code=emulator.exit_code or 0,
                     stdout=emulator.stdout, pipeline=pipeline)


def compare_cores(program: Program, cores: list[CoreConfig | str],
                  max_steps: int | None = None) -> dict[str, RunResult]:
    """Run the same binary on several cores (the paper's methodology)."""
    return {result.core: result
            for result in (run_on_core(program, core, max_steps)
                           for core in cores)}
