"""Glue: run an assembled program through emulator + timing model."""

from __future__ import annotations

from dataclasses import dataclass

from ..asm.program import Program
from ..mem.hierarchy import MemoryHierarchy
from ..sim.emulator import Emulator, WatchdogExpired
from ..uarch.config import CoreConfig
from ..uarch.core import PipelineModel
from ..uarch.presets import get_preset
from ..uarch.stats import CoreStats


@dataclass
class RunResult:
    """Functional + timing outcome of one program on one core."""

    core: str
    stats: CoreStats
    exit_code: int
    stdout: str
    pipeline: PipelineModel
    #: the WatchdogExpired that bounded this run, when the caller asked
    #: for a partial result instead of the exception (None = ran to exit)
    watchdog: WatchdogExpired | None = None

    @property
    def ipc(self) -> float:
        return self.stats.ipc

    @property
    def cycles(self) -> int:
        return self.stats.cycles


def run_on_core(program: Program, core: CoreConfig | str,
                max_steps: int | None = None,
                hierarchy: MemoryHierarchy | None = None,
                fast: bool = True,
                tracer=None, profiler=None,
                max_insts: int | None = None,
                partial_on_watchdog: bool = False,
                tier: int | None = None) -> RunResult:
    """Execute *program* functionally and time it on *core*.

    ``fast`` feeds the timing model through the block-translation
    cache (``Emulator.fast_trace``); the retired stream is identical
    to the precise interpreter, so timing results do not change.
    ``tier`` overrides ``fast`` when given: 1 = precise interpreter,
    2 = block cache, 3 = specializing translator
    (``Emulator.codegen_trace``); every tier retires the same stream.

    ``tracer``/``profiler`` are optional ``repro.obs`` hook objects
    (a :class:`~repro.obs.PipelineTracer` / :class:`~repro.obs.
    GuestProfiler`); None keeps the hot loops hook-free.

    ``max_insts`` bounds the run with the emulator's instruction
    watchdog.  When the watchdog fires, ``partial_on_watchdog=True``
    returns the statistics accumulated up to expiry (with the
    exception attached as ``RunResult.watchdog`` and
    ``stats.extra["watchdog_expired"] = 1``) instead of raising —
    bounded jobs still return data.
    """
    config = get_preset(core) if isinstance(core, str) else core
    emulator = (Emulator(program, instruction_limit=max_insts)
                if max_insts is not None else Emulator(program))
    pipeline = PipelineModel(config, hierarchy=hierarchy)
    pipeline.tracer = tracer
    pipeline.profiler = profiler
    if tier is not None and tier not in (1, 2, 3):
        raise ValueError(f"tier must be 1, 2 or 3, not {tier!r}")
    if tier == 3:
        trace = emulator.codegen_trace(max_steps)
    elif tier == 1:
        trace = emulator.trace(max_steps)
    elif tier == 2 or fast:
        trace = emulator.fast_trace(max_steps)
    else:
        trace = emulator.trace(max_steps)
    watchdog = None
    try:
        stats = pipeline.run(trace)
    except WatchdogExpired as exc:
        if not partial_on_watchdog:
            raise
        watchdog = exc
        stats = pipeline.finish()   # drain in-flight work, fold RAS counters
        stats.extra["watchdog_expired"] = 1
    if watchdog is None and emulator.exit_code not in (0, None):
        raise RuntimeError(
            f"program exited with {emulator.exit_code} on {config.name}; "
            f"stdout: {emulator.stdout!r}")
    stats.decode_cache_hits = emulator.decode_cache_hits
    stats.decode_cache_misses = emulator.decode_cache_misses
    if emulator._blocks is not None:
        stats.extra.update(emulator._blocks.counters())
    if emulator._codegen is not None:
        stats.extra.update((f"codegen_{name}", value) for name, value
                           in emulator._codegen.counters().items())
    vec = emulator.state.vec_counters
    if any(vec.values()):  # scalar workloads: extra stays unchanged
        stats.extra.update((f"vector_{name}", value)
                           for name, value in vec.items())
    return RunResult(core=config.name, stats=stats,
                     exit_code=emulator.exit_code or 0,
                     stdout=emulator.stdout, pipeline=pipeline,
                     watchdog=watchdog)


#: Component buckets for :func:`profile_run`, keyed by the ``repro``
#: subpackage that owns the profiled frame.
_PROFILE_BUCKETS = (
    ("emulation", "sim"),       # functional emulator + block cache
    ("timing_model", "uarch"),  # 12-stage pipeline model
    ("memory_hierarchy", "mem"),  # caches / TLBs / prefetch / DRAM model
)


def profile_run(program: Program, core: CoreConfig | str,
                max_steps: int | None = None,
                fast: bool = True) -> tuple[RunResult, dict]:
    """Run like :func:`run_on_core` under ``cProfile`` and attribute
    wall time to emulation vs timing model vs memory hierarchy.

    Attribution is by owning subpackage of each profiled frame's file
    (``repro.sim`` / ``repro.uarch`` / ``repro.mem``; everything else is
    ``other``).  Note the caveat: the fast-path monolith inlines the
    L1/TLB hit paths directly into ``repro.uarch.core``, so demand *hits*
    are charged to ``timing_model`` — ``memory_hierarchy`` covers the
    miss paths, prefetch and refill machinery.  Profiling itself adds
    interpreter overhead, so use the ratios, not the absolute seconds.
    """
    import cProfile
    import os
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    result = run_on_core(program, core, max_steps=max_steps, fast=fast)
    profiler.disable()

    sep = os.sep
    breakdown = {name: 0.0 for name, _ in _PROFILE_BUCKETS}
    breakdown["other"] = 0.0
    total = 0.0
    for (filename, _line, _fn), (_cc, _nc, tt, _ct, _callers) \
            in pstats.Stats(profiler).stats.items():
        total += tt
        for name, pkg in _PROFILE_BUCKETS:
            if f"{sep}repro{sep}{pkg}{sep}" in filename:
                breakdown[name] += tt
                break
        else:
            breakdown["other"] += tt
    breakdown["total_s"] = total
    return result, breakdown


def render_profile(breakdown: dict) -> str:
    """Terminal table for a :func:`profile_run` breakdown."""
    total = breakdown["total_s"] or 1.0
    lines = [f"{'component':20s}{'seconds':>10}{'share':>8}"]
    for name in ("emulation", "timing_model", "memory_hierarchy", "other"):
        seconds = breakdown[name]
        lines.append(f"{name:20s}{seconds:>10.3f}{seconds / total:>7.1%}")
    lines.append(f"{'total':20s}{breakdown['total_s']:>10.3f}{'':>8}")
    lines.append("(cProfile self-time by owning subpackage; L1/TLB demand "
                 "hits are inlined into the timing model)")
    return "\n".join(lines)


def compare_cores(program: Program, cores: list[CoreConfig | str],
                  max_steps: int | None = None,
                  fast: bool = True) -> dict[str, RunResult]:
    """Run the same binary on several cores (the paper's methodology)."""
    return {result.core: result
            for result in (run_on_core(program, core, max_steps, fast=fast)
                           for core in cores)}
