"""Experiment harness: one runner per paper table/figure.

``run_all(quick=True)`` regenerates every experiment and returns the
results; ``python -m repro.harness`` prints them.
"""

from __future__ import annotations

from .asid import run_asid  # noqa: F401
from .blockchain import run_blockchain  # noqa: F401
from .explore import run_explore  # noqa: F401
from .fig17 import run_fig17  # noqa: F401
from .fig18 import run_fig18  # noqa: F401
from .fig19 import run_fig19  # noqa: F401
from .fig20 import run_fig20  # noqa: F401
from .fig21 import run_fig21  # noqa: F401
from .lintsweep import run_lint  # noqa: F401
from .ras_campaign import run_campaign, run_ras  # noqa: F401
from .report import ExperimentResult, Row, geomean  # noqa: F401
from .runner import RunResult, compare_cores, run_on_core  # noqa: F401
from .spec import run_spec  # noqa: F401
from .table1 import run_table1  # noqa: F401
from .table2 import run_table2  # noqa: F401
from .vecmac import run_vecmac  # noqa: F401


def run_service(quick: bool = True, jobs: int | None = None):
    """The chaos-campaign robustness experiment (``repro.service``).

    Imported lazily: the service's job worker runs cells through this
    package (``harness.runner``), so a top-level import would be
    circular.  ``jobs`` sets the service's worker-pool width.
    """
    from ..service.chaos import run_service as _run_service

    return _run_service(quick=quick, jobs=jobs)


EXPERIMENTS = {
    "table1": run_table1,
    "table2": run_table2,
    "fig17": run_fig17,
    "fig18": run_fig18,
    "fig19": run_fig19,
    "fig20": run_fig20,
    "fig21": run_fig21,
    "spec": run_spec,
    "asid": run_asid,
    "vecmac": run_vecmac,
    "blockchain": run_blockchain,
    "ras": run_ras,
    "lint": run_lint,
    "service": run_service,
    "explore": run_explore,
}


def run_all(quick: bool = True,
            jobs: int | None = None) -> dict[str, ExperimentResult]:
    """Run every experiment; returns {name: result}.

    ``jobs`` fans each experiment's independent (core, workload) cells
    out over a process pool where the experiment supports it.
    """
    import inspect

    results = {}
    for name, fn in EXPERIMENTS.items():
        kwargs = {"quick": quick}
        if jobs is not None and "jobs" in inspect.signature(fn).parameters:
            kwargs["jobs"] = jobs
        results[name] = fn(**kwargs)
    return results
