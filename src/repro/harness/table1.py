"""Table I: supported core configurations.

The table enumerates the configuration space: 1/2/4 cores per cluster,
32/64 KB L1 caches, 256 KB - 8 MB L2, vector unit optional.  The
reproduction instantiates every corner, checks the structures come out
with the advertised geometry, and smoke-runs a kernel on single-core
configurations.
"""

from __future__ import annotations

from ..asm import assemble
from ..smp import CoherenceConfig, CoherentCluster
from ..uarch.presets import xt910
from .parallel import run_cells
from .report import ExperimentResult
from .runner import run_on_core

CORES_PER_CLUSTER = (1, 2, 4)
L1_SIZES_KB = (32, 64)
L2_SIZES_KB = (256, 512, 1024, 2048, 4096, 8192)
VECTOR_OPTIONS = (True, False)

_SMOKE = """
_start:
    li t0, 100
    li t1, 0
loop:
    add t1, t1, t0
    addi t0, t0, -1
    bnez t0, loop
    li a0, 0
    li a7, 93
    ecall
"""


def enumerate_configs():
    """Yield (cores, l1_kb, l2_kb, vector) over the Table I space."""
    for cores in CORES_PER_CLUSTER:
        for l1 in L1_SIZES_KB:
            for l2 in L2_SIZES_KB:
                for vector in VECTOR_OPTIONS:
                    yield cores, l1, l2, vector


def _table1_cell(cores: int, l1: int, l2: int, vector: bool,
                 quick: bool) -> int:
    """Build/verify one Table I corner; returns 1 if it was smoke-run."""
    config = xt910(l1_kb=l1, l2_kb=l2, vector=vector)
    assert config.mem.l1d_size == l1 << 10
    assert config.mem.l2_size == l2 << 10
    cluster = CoherentCluster(CoherenceConfig(
        cores=cores, l1_size=l1 << 10, l2_size=l2 << 10))
    assert len(cluster.l1s) == cores
    if cores == 1 and (not quick or (l1 == 64 and l2 == 2048)):
        run = run_on_core(assemble(_SMOKE), config)
        assert run.exit_code == 0
        return 1
    return 0


def run_table1(quick: bool = False,
               jobs: int | None = None) -> ExperimentResult:
    result = ExperimentResult(
        experiment="table1", title="XT-910 core configurations")
    cells = [(cores, l1, l2, vector, quick)
             for cores, l1, l2, vector in enumerate_configs()]
    smoke_flags = run_cells(_table1_cell, cells, jobs)
    built = len(smoke_flags)
    smoked = sum(smoke_flags)
    result.add("configurations built", 72, built, "",
               note="3 core counts x 2 L1 x 6 L2 x vec on/off")
    result.add("single-core smoke runs", None, smoked, "")
    result.add("cores per cluster", "1, 2, 4",
               "/".join(map(str, CORES_PER_CLUSTER)), "")
    result.add("L1 sizes", "32KB, 64KB",
               "/".join(f"{s}KB" for s in L1_SIZES_KB), "")
    result.add("L2 range", "256KB ~ 8MB",
               f"{L2_SIZES_KB[0]}KB ~ {L2_SIZES_KB[-1] // 1024}MB", "")
    result.raw = {"built": built, "smoked": smoked}
    result.metric("configurations_built", built)
    result.metric("smoke_runs", smoked)
    return result
