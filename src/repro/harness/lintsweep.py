"""CI sweep: static lint + runtime sanitizer over every workload.

Not a paper figure — this is the guest-program QA gate the lint
baseline workflow hangs off.  Each workload is statically analyzed
(CFG + checker suite, diffed against the committed baseline) and then
run to completion under the runtime sanitizer; either a new finding or
a runtime violation fails the experiment, which is what the
``lint-guests`` CI job keys on.
"""

from __future__ import annotations

from ..analysis import Sanitizer, SanitizerViolation
from ..analysis.lint import (
    compare_to_baseline,
    lint_program,
    load_baseline,
)
from ..sim.emulator import Emulator
from ..workloads import all_workloads
from .report import ExperimentResult


def run_lint(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        experiment="lint",
        title="guest static analysis + runtime sanitizer sweep")
    reports = []
    sanitize_failures = 0
    blocks_checked = 0
    for workload in all_workloads():
        program = workload.program()
        report = lint_program(program, name=workload.name)
        reports.append(report)

        emulator = Emulator(program)
        emulator.sanitizer = Sanitizer(program)
        try:
            exit_code = emulator.run_fast()
        except SanitizerViolation as exc:
            sanitize_failures += 1
            result.notes.append(
                f"{workload.name}: sanitizer violation: "
                f"{exc.violation.render()}")
            exit_code = -1
        blocks_checked += emulator.sanitizer.blocks_checked
        if exit_code != 0:
            sanitize_failures += 1
            result.notes.append(
                f"{workload.name}: sanitized run exited {exit_code}")

    baseline = load_baseline()
    new, stale = compare_to_baseline(reports, baseline)
    total_findings = sum(len(r.findings) for r in reports)
    result.add("workloads analyzed", None, len(reports))
    result.add("instructions decoded", None,
               sum(r.instructions for r in reports))
    result.add("basic blocks", None, sum(r.blocks for r in reports))
    result.add("findings (baselined)", None, total_findings - len(new))
    result.add("findings (new)", 0, len(new), note="gates CI")
    result.add("stale baseline keys", 0, len(stale))
    result.add("sanitized blocks", None, blocks_checked)
    result.add("sanitizer failures", 0, sanitize_failures,
               note="gates CI")
    for name, finding in new:
        result.notes.append(f"NEW {name}: {finding.render()}")
    for name, key in stale:
        result.notes.append(f"stale: {name}: {key}")
    result.raw = {
        "new": len(new),
        "stale": len(stale),
        "sanitize_failures": sanitize_failures,
        "ok": not new and not stale and not sanitize_failures,
    }
    result.metric("workloads_analyzed", len(reports))
    result.metric("instructions_decoded",
                  sum(r.instructions for r in reports))
    result.metric("basic_blocks", sum(r.blocks for r in reports))
    result.metric("findings_baselined", total_findings - len(new))
    result.metric("findings_new", len(new))
    result.metric("stale_baseline_keys", len(stale))
    result.metric("sanitized_blocks", blocks_checked)
    result.metric("sanitize_failures", sanitize_failures)
    result.metric("ok", result.raw["ok"])
    return result
