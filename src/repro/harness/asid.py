"""Section V.E text claim: 16-bit ASIDs cut context-switch TLB flushes
"by almost 10X".

With ASID tagging, a full TLB flush is needed only when the ASID space
wraps, so the flush count over a fixed number of context switches
scales as 2^-asid_bits.  The paper does not state the predecessor's
ASID width; the sweep below reports the ratio against several plausible
baselines — a ~13-bit predecessor reproduces "almost 10X" exactly, and
every narrower baseline exceeds it.
"""

from __future__ import annotations

from ..mem.tlb import Tlb, TlbConfig
from .report import ExperimentResult

SWITCHES = 1_000_000


def flushes_for(asid_bits: int, switches: int = SWITCHES) -> int:
    tlb = Tlb(TlbConfig(asid_bits=asid_bits))
    for i in range(switches):
        if i % 64 == 0:
            tlb.refill(0x1000)  # keep flushes meaningful, cheaply
        tlb.context_switch()
    return tlb.stats.flushes


def run_asid(quick: bool = False) -> ExperimentResult:
    switches = 300_000 if quick else SWITCHES
    result = ExperimentResult(
        experiment="asid",
        title="context-switch TLB flushes vs ASID width (section V.E)")
    wide = flushes_for(16, switches)
    result.add("16-bit ASID flushes", None, wide, "flushes",
               note=f"over {switches} switches")
    for bits in (8, 12, 13, 14):
        narrow = flushes_for(bits, switches)
        ratio = narrow / max(wide, 1)
        note = "paper: 'decreased by almost 10X'" if bits == 13 else ""
        result.add(f"{bits}-bit baseline ratio", 10.0 if bits == 13 else None,
                   round(ratio, 1), "x more flushes", note=note)
    return result
