"""Vector-engine benchmark (``python -m repro bench --vector``).

Times the RVV kernel suite under the per-element reference vector
engine and under the numpy-batched engine (``repro.sim.exec_vector``),
on every execution tier the batched engine plugs into, and writes the
numbers to ``BENCH_vector.json``.  Each batched measurement doubles as
an equivalence check: the run is only accepted if the full vector
register file, the touched-memory digest and the exit code are
bit-identical to the reference engine's run of the same kernel.

The committed JSON is the CI regression baseline: the bench CI job
re-runs ``bench --vector --quick`` and fails when the geomean
numpy/reference speedup drops below both the absolute floor
(``MIN_GEOMEAN_SPEEDUP``, the ISSUE acceptance gate) and the
tolerance-scaled committed numbers.  The nightly lane runs the full
(non-quick) variant and separately re-verifies the whole suite with
``REPRO_VECTOR_ENGINE=ref`` forced on.
"""

from __future__ import annotations

import hashlib
import json
import time

from ..sim import exec_vector
from ..sim.emulator import Emulator
from ..workloads import vector_suite
from .report import geomean

#: JSON schema version of BENCH_vector.json
SCHEMA = 1
DEFAULT_TOLERANCE = 0.30
#: the ISSUE acceptance floor: batched must beat per-element by 3x
#: geomean on the vector suite at VLEN=128.
MIN_GEOMEAN_SPEEDUP = 3.0

#: kernels dominated by scalar work (kept out of the speedup geomean
#: but still run — they guard against the batched engine slowing the
#: scalar path down).
_SCALAR_BASELINES = frozenset({"scalar-mac16"})


def _workloads(quick: bool):
    suite = vector_suite()
    if quick:
        keep = {"vec-mac16", "scalar-mac16", "vec-axpy-f32",
                "vec-stencil32", "vec-gather", "vec-memcpy"}
        suite = [w for w in suite if w.name in keep]
    return suite


def _run_once(workload, tier: int):
    """One run; returns (emulator, elapsed seconds)."""
    emulator = Emulator(workload.program())
    start = time.perf_counter()
    emulator.run(tier=tier)
    elapsed = time.perf_counter() - start
    return emulator, elapsed


def _fingerprint(workload, emulator) -> tuple:
    """Bit-level identity evidence: vregs, result memory, exit code."""
    program = workload.program()
    result = emulator.state.memory.load_int(
        program.symbol(workload.result_symbol), 8)
    data_len = max(len(program.data), 8)
    mem = emulator.state.memory.load_bytes(program.data_base, data_len)
    return (bytes(emulator.state.vbuf),
            hashlib.sha256(mem).hexdigest(),
            result, emulator.exit_code or 0)


def bench_workload(workload, repeat: int, tiers=(1, 2, 3)) -> dict:
    """Reference vs numpy timings (plus identity proof) for one kernel.

    The reference engine is timed once per tier (it is the slow side
    by construction); the numpy engine gets best-of-*repeat*.
    """
    entry: dict = {"tiers": {}}
    for tier in tiers:
        exec_vector.select_engine("ref")
        try:
            ref_emu, ref_s = _run_once(workload, tier)
        finally:
            exec_vector.select_engine("numpy")
        ref_fp = _fingerprint(workload, ref_emu)
        best = float("inf")
        np_fp = None
        for _ in range(repeat):
            np_emu, elapsed = _run_once(workload, tier)
            best = min(best, elapsed)
            np_fp = _fingerprint(workload, np_emu)
        if np_fp != ref_fp:
            raise AssertionError(
                f"{workload.name} tier {tier}: numpy engine diverged "
                f"from the reference engine")
        insts = np_emu.state.instret
        vec = np_emu.state.vec_counters
        entry["tiers"][str(tier)] = {
            "insts": insts,
            "ref_s": round(ref_s, 6),
            "numpy_s": round(best, 6),
            "speedup": round(ref_s / best, 3),
            "ref_mips": round(insts / ref_s / 1e6, 4),
            "numpy_mips": round(insts / best / 1e6, 4),
        }
        entry["batched_ops"] = vec["batched_ops"]
        entry["specialized_ops"] = vec["specialized_ops"]
        entry["fallback_ops"] = vec["fallback_ops"]
        entry["mask_density"] = round(
            vec["elems_active"] / vec["elems_total"], 4) if (
                vec["elems_total"]) else 1.0
    entry["insts"] = entry["tiers"][str(tiers[0])]["insts"]
    return entry


def run_bench(quick: bool = False, repeat: int = 3) -> dict:
    """Benchmark the vector suite; returns the BENCH_vector.json payload.

    ``quick`` trims the workload list (the CI bench job's variant);
    both variants cover all three tiers so the tier-3 specialization
    path is always exercised.
    """
    workloads = _workloads(quick)
    tiers = (1, 2, 3)
    results = {w.name: bench_workload(w, repeat=repeat, tiers=tiers)
               for w in workloads}
    vector_names = [name for name in results
                    if name not in _SCALAR_BASELINES]
    per_tier = {
        str(tier): round(geomean(
            [results[n]["tiers"][str(tier)]["speedup"]
             for n in vector_names]), 3)
        for tier in tiers}
    all_speedups = [results[n]["tiers"][str(t)]["speedup"]
                    for n in vector_names for t in tiers]
    payload = {
        "schema": SCHEMA,
        "bench": "vector",
        "quick": quick,
        "repeat": repeat,
        "vlen": 128,
        "workloads": results,
        "summary": {
            "geomean_speedup": round(geomean(all_speedups), 3),
            "geomean_speedup_per_tier": per_tier,
            "total_fallback_ops": sum(
                r["fallback_ops"] for r in results.values()),
        },
    }
    return payload


def check_regression(payload: dict, baseline: dict,
                     tolerance: float = DEFAULT_TOLERANCE) -> list[str]:
    """Compare a fresh vector bench against the committed baseline.

    Returns human-readable failure strings (empty = no regression).
    Two gates: the absolute ``MIN_GEOMEAN_SPEEDUP`` floor from the
    ISSUE acceptance criteria, and the relative tolerance against the
    committed geomean (a ratio, so host-speed differences pass).
    """
    failures = []
    current = payload["summary"]["geomean_speedup"]
    if current < MIN_GEOMEAN_SPEEDUP:
        failures.append(
            f"geomean numpy/ref speedup {current} below the absolute "
            f"floor {MIN_GEOMEAN_SPEEDUP}")
    base = baseline.get("summary", {}).get("geomean_speedup")
    if base:
        floor = base * (1.0 - tolerance)
        if current < floor:
            failures.append(
                f"geomean_speedup regressed: {current} < {floor:.3f} "
                f"(baseline {base}, tolerance {tolerance:.0%})")
    return failures


def render(payload: dict) -> str:
    """Terminal table for the vector bench payload."""
    tiers = sorted(next(iter(payload["workloads"].values()))["tiers"])
    header = f"{'workload':16s}{'insts':>9}"
    for tier in tiers:
        header += f"{'t' + tier + ' ref':>9}{'t' + tier + ' np':>9}"
    header += f"{'speedup':>9}{'fallback':>9}"
    lines = [header]
    for name, r in payload["workloads"].items():
        line = f"{name:16s}{r['insts']:>9}"
        for tier in tiers:
            t = r["tiers"][tier]
            line += f"{t['ref_mips']:>9.2f}{t['numpy_mips']:>9.2f}"
        best = max(r["tiers"][t]["speedup"] for t in tiers)
        line += f"{best:>8.2f}x{r['fallback_ops']:>9}"
        lines.append(line)
    s = payload["summary"]
    per_tier = ", ".join(
        f"tier{t}: {v:.2f}x"
        for t, v in sorted(s["geomean_speedup_per_tier"].items()))
    lines.append(
        f"(geomean numpy/ref speedup {s['geomean_speedup']:.2f}x — "
        f"{per_tier}; {s['total_fallback_ops']} per-element fallbacks; "
        f"MIPS columns are ref vs numpy per tier)")
    return "\n".join(lines)


def save(payload: dict, path: str) -> None:
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load(path: str) -> dict:
    with open(path) as handle:
        return json.load(handle)


__all__ = ["run_bench", "bench_workload", "check_regression", "render",
           "save", "load", "DEFAULT_TOLERANCE", "MIN_GEOMEAN_SPEEDUP",
           "SCHEMA"]
