"""Experiment result containers and text rendering.

Every experiment reports twice: human-readable rows (``render``) and a
machine-readable snapshot through the shared
:class:`~repro.obs.metrics.MetricsRegistry` (``metrics``, exported by
``to_json_dict`` / the harness ``--json`` flag).  Registry keys are
validated dotted names namespaced by experiment, so the JSON schema is
stable across runs — the ``raw`` dict remains for loosely-typed CI
plumbing that predates the registry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..obs.metrics import MetricsRegistry


@dataclass
class Row:
    """One reported quantity: paper value vs measured value."""

    name: str
    paper: float | str | None
    measured: float | str
    unit: str = ""
    note: str = ""


@dataclass
class ExperimentResult:
    """One table/figure reproduction."""

    experiment: str
    title: str
    rows: list[Row] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    raw: dict = field(default_factory=dict)
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)

    def add(self, name: str, paper, measured, unit: str = "",
            note: str = "") -> None:
        self.rows.append(Row(name, paper, measured, unit, note))

    def metric(self, key: str, value) -> None:
        """Record one registry metric under this experiment's namespace."""
        self.metrics.set(f"{self.experiment}.{key}", value)

    def to_json_dict(self) -> dict[str, Any]:
        """Schema-stable payload for ``python -m repro.harness --json``."""
        return {
            "experiment": self.experiment,
            "title": self.title,
            "rows": [{"name": r.name, "paper": r.paper,
                      "measured": r.measured, "unit": r.unit,
                      "note": r.note} for r in self.rows],
            "notes": list(self.notes),
            "metrics": self.metrics.as_dict(),
        }

    def render(self) -> str:
        width = max((len(r.name) for r in self.rows), default=10) + 2
        lines = [f"== {self.experiment}: {self.title} =="]
        header = f"{'metric':<{width}}{'paper':>12}{'measured':>12}  unit"
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.rows:
            paper = _fmt(row.paper)
            measured = _fmt(row.measured)
            suffix = f"  {row.unit}"
            if row.note:
                suffix += f"   ({row.note})"
            lines.append(f"{row.name:<{width}}{paper:>12}{measured:>12}"
                         f"{suffix}")
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)


def _fmt(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.3f}" if abs(value) < 100 else f"{value:.1f}"
    return str(value)


def geomean(values: list[float]) -> float:
    if not values:
        return 0.0
    product = 1.0
    for v in values:
        product *= v
    return product ** (1.0 / len(values))
