"""Experiment result containers and text rendering."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Row:
    """One reported quantity: paper value vs measured value."""

    name: str
    paper: float | str | None
    measured: float | str
    unit: str = ""
    note: str = ""


@dataclass
class ExperimentResult:
    """One table/figure reproduction."""

    experiment: str
    title: str
    rows: list[Row] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    raw: dict = field(default_factory=dict)

    def add(self, name: str, paper, measured, unit: str = "",
            note: str = "") -> None:
        self.rows.append(Row(name, paper, measured, unit, note))

    def render(self) -> str:
        width = max((len(r.name) for r in self.rows), default=10) + 2
        lines = [f"== {self.experiment}: {self.title} =="]
        header = f"{'metric':<{width}}{'paper':>12}{'measured':>12}  unit"
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.rows:
            paper = _fmt(row.paper)
            measured = _fmt(row.measured)
            suffix = f"  {row.unit}"
            if row.note:
                suffix += f"   ({row.note})"
            lines.append(f"{row.name:<{width}}{paper:>12}{measured:>12}"
                         f"{suffix}")
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)


def _fmt(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.3f}" if abs(value) < 100 else f"{value:.1f}"
    return str(value)


def geomean(values: list[float]) -> float:
    if not values:
        return 0.0
    product = 1.0
    for v in values:
        product *= v
    return product ** (1.0 / len(values))
