"""Pipeline timing-model benchmark (``python -m repro bench --pipeline``).

Times the 12-stage timing model in both implementations — the frozen
pre-fast-path oracle (:class:`repro.uarch.refmodel.ReferencePipelineModel`,
"ref") and the optimised production model
(:class:`repro.uarch.core.PipelineModel`, "fast") — over the full
harness path (block-translated emulator + timing model) on the CoreMark
kernels, and writes ``BENCH_pipeline.json``.

Methodology: ref and fast are interleaved back-to-back in the same
process and each cell keeps the best of ``repeat`` runs, which shaves
scheduler noise off the ratio; every pair of runs is also checked for
bit-identical :meth:`CoreStats.as_comparable` — a bench run that would
publish a speedup for a model that diverged from the oracle fails
instead.

The committed JSON doubles as the CI regression baseline, exactly like
``BENCH_emulator.json``: the bench CI job re-runs ``bench --pipeline
--quick`` and fails when fast-model harness MIPS or the fast/ref
speedup drops more than the tolerance (default 30%) below the
checked-in numbers.
"""

from __future__ import annotations

import json
import time

from ..mem.hierarchy import MemoryHierarchy
from ..sim.emulator import Emulator
from ..uarch.core import PipelineModel
from ..uarch.presets import get_preset
from ..uarch.refmodel import ReferencePipelineModel
from .perfbench import _lookup, _workloads
from .report import geomean

#: JSON schema version of BENCH_pipeline.json
SCHEMA = 1
DEFAULT_TOLERANCE = 0.30
CORE = "xt910"


def _time_model(model_cls, program):
    """One harness run (emulator + *model_cls*): (stats, seconds)."""
    config = get_preset(CORE)
    model = model_cls(config, MemoryHierarchy(config.mem))
    emulator = Emulator(program)
    start = time.perf_counter()
    stats = model.run(emulator.fast_trace(None))
    elapsed = time.perf_counter() - start
    return stats, elapsed


def bench_workload(name: str, repeat: int = 3) -> dict:
    """Interleaved ref/fast numbers for one kernel."""
    program = _lookup(name).program()
    best_ref = best_fast = float("inf")
    insts = 0
    for _ in range(repeat):
        ref_stats, ref_s = _time_model(ReferencePipelineModel, program)
        fast_stats, fast_s = _time_model(PipelineModel, program)
        if fast_stats.as_comparable() != ref_stats.as_comparable():
            raise RuntimeError(
                f"{name}: fast model diverged from the reference oracle; "
                f"refusing to publish bench numbers")
        best_ref = min(best_ref, ref_s)
        best_fast = min(best_fast, fast_s)
        insts = fast_stats.instructions
    return {
        "insts": insts,
        "ref_s": round(best_ref, 6),
        "fast_s": round(best_fast, 6),
        "ref_mips": round(insts / best_ref / 1e6, 4),
        "fast_mips": round(insts / best_fast / 1e6, 4),
        "speedup": round(best_ref / best_fast, 3),
    }


def run_bench(quick: bool = False, repeat: int = 3) -> dict:
    """Benchmark every kernel; returns the BENCH_pipeline.json payload."""
    workloads = _workloads(quick)
    results = {w.name: bench_workload(w.name, repeat=repeat)
               for w in workloads}
    coremark = [r for name, r in results.items()
                if name.startswith("coremark")]
    return {
        "schema": SCHEMA,
        "bench": "pipeline",
        "core": CORE,
        "quick": quick,
        "repeat": repeat,
        "workloads": results,
        "summary": {
            "geomean_speedup": round(
                geomean([r["speedup"] for r in results.values()]), 3),
            "coremark_ref_mips": round(
                geomean([r["ref_mips"] for r in coremark]), 4),
            "coremark_fast_mips": round(
                geomean([r["fast_mips"] for r in coremark]), 4),
            "coremark_speedup": round(
                geomean([r["speedup"] for r in coremark]), 3),
        },
    }


def check_regression(payload: dict, baseline: dict,
                     tolerance: float = DEFAULT_TOLERANCE) -> list[str]:
    """Compare a fresh bench run against the committed baseline.

    Returns human-readable failure strings (empty = no regression).
    Two gates: absolute fast-model harness throughput (host-relative,
    hence the ratio tolerance) and the fast/ref speedup, which is
    host-independent and catches the fast path quietly losing its edge.
    """
    failures = []
    base_summary = baseline.get("summary", {})
    for key in ("coremark_fast_mips", "coremark_speedup"):
        base = base_summary.get(key)
        if not base:
            continue
        current = payload["summary"][key]
        floor = base * (1.0 - tolerance)
        if current < floor:
            failures.append(
                f"{key} regressed: {current} < {floor:.4f} "
                f"(baseline {base}, tolerance {tolerance:.0%})")
    return failures


def render(payload: dict) -> str:
    """Terminal table for the bench payload."""
    lines = [f"{'workload':18s}{'insts':>9}{'ref':>10}{'fast':>10}"
             f"{'speedup':>9}",
             f"{'':18s}{'':>9}{'MIPS':>10}{'MIPS':>10}{'':>9}"]
    for name, r in payload["workloads"].items():
        lines.append(
            f"{name:18s}{r['insts']:>9}{r['ref_mips']:>10.3f}"
            f"{r['fast_mips']:>10.3f}{r['speedup']:>8.2f}x")
    s = payload["summary"]
    lines.append(
        f"{'geomean':18s}{'':>9}{s['coremark_ref_mips']:>10.3f}"
        f"{s['coremark_fast_mips']:>10.3f}{s['coremark_speedup']:>8.2f}x")
    lines.append("(harness MIPS = emulator + xt910 timing model; ref is "
                 "the frozen pre-fast-path oracle, interleaved best-of-"
                 f"{payload['repeat']})")
    return "\n".join(lines)


def save(payload: dict, path: str) -> None:
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load(path: str) -> dict:
    with open(path) as handle:
        return json.load(handle)


__all__ = ["run_bench", "bench_workload", "check_regression", "render",
           "save", "load", "DEFAULT_TOLERANCE", "SCHEMA", "CORE"]
