"""Table II: core frequency, area and power from the analytical model.

See :mod:`repro.physical` and DESIGN.md for the substitution rationale:
the model's coefficients are calibrated against the paper's published
numbers, and this harness regenerates the table rows.
"""

from __future__ import annotations

from ..physical import table2_rows
from .report import ExperimentResult


def run_table2(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        experiment="table2",
        title="core performance in a 12nm FinFET (analytical model)")
    units = {
        "frequency_nominal_ghz": "GHz @0.8V LVT",
        "frequency_boost_ghz": "GHz @1.0V 30% ULVT",
        "frequency_7nm_ghz": "GHz (7nm)",
        "area_with_vec_mm2": "mm^2",
        "area_without_vec_mm2": "mm^2",
        "dynamic_uw_per_mhz": "uW/MHz",
    }
    for key, row in table2_rows().items():
        result.add(key, row["paper"], row["model"], units.get(key, ""))
    result.notes.append(
        "analytical substitution for silicon measurement; coefficients "
        "calibrated to the paper's published data points (DESIGN.md)")
    return result
