"""Fig. 17: CoreMark scores across the embedded-core field.

The paper reports CoreMark/MHz: XT-910 at 7.1, "40% faster than SiFive
U74" (5.1, itself on par with Cortex-A55), with SweRV at 5.0 and the
single-issue cores (U54, A53-class) well below.

Our absolute unit is IPC on the CoreMark-like suite; to present the
figure on the paper's axis we scale model IPC by a single constant
chosen so XT-910 lands on 7.1 CoreMark/MHz (the standard way to compare
a model's *relative* accuracy against published scores).  What must
reproduce is the ladder: the ordering and the ratios between cores.
"""

from __future__ import annotations

from ..workloads.coremark import coremark_suite
from .parallel import run_cells
from .report import ExperimentResult, geomean
from .runner import run_on_core

# Fig. 17 values as printed in the paper (CoreMark/MHz).
PAPER_SCORES = {
    "xt910": 7.1,
    "u74": 5.1,
    "cortex-a55": 5.1,
    "swerv": 5.0,
    "cortex-a53": 3.2,
    "u54": 2.8,
}

DEFAULT_CORES = ["xt910", "u74", "cortex-a55", "swerv", "cortex-a53", "u54"]


def _coremark_cell(core: str, workload_name: str) -> float:
    """IPC of one CoreMark kernel on one core (picklable cell)."""
    workload = next(w for w in coremark_suite() if w.name == workload_name)
    return run_on_core(workload.program(), core).ipc


def coremark_ipc(core: str, quick: bool = False,
                 jobs: int | None = None) -> float:
    """Geometric-mean IPC over the four CoreMark kernels."""
    names = [w.name for w in coremark_suite()]
    return geomean(run_cells(_coremark_cell,
                             [(core, name) for name in names], jobs))


def run_fig17(cores: list[str] | None = None, quick: bool = False,
              jobs: int | None = None) -> ExperimentResult:
    cores = cores if cores is not None else DEFAULT_CORES
    result = ExperimentResult(
        experiment="fig17",
        title="CoreMark/MHz across embedded cores")
    names = [w.name for w in coremark_suite()]
    cells = [(core, name) for core in cores for name in names]
    cell_ipcs = run_cells(_coremark_cell, cells, jobs)
    ipcs = {core: geomean(cell_ipcs[i * len(names):(i + 1) * len(names)])
            for i, core in enumerate(cores)}
    scale = PAPER_SCORES["xt910"] / ipcs["xt910"]
    for core in cores:
        result.add(core, PAPER_SCORES.get(core),
                   round(ipcs[core] * scale, 2), "CoreMark/MHz",
                   note=f"model IPC {ipcs[core]:.3f}")
    if "u74" in ipcs:
        ratio = ipcs["xt910"] / ipcs["u74"]
        result.add("xt910 / u74 speedup", 1.40, round(ratio, 2), "x",
                   note="the paper's '40% faster than U74'")
    result.notes.append(
        "model IPC scaled so xt910 = 7.1 CoreMark/MHz; the ladder "
        "ordering and ratios are the reproduced quantity")
    result.raw = {"ipc": ipcs, "scale": scale}
    result.metric("scale", scale)
    for core in cores:
        result.metric(f"ipc.{core}", ipcs[core])
        result.metric(f"coremark_per_mhz.{core}", ipcs[core] * scale)
    if "u74" in ipcs:
        result.metric("speedup_vs_u74", ipcs["xt910"] / ipcs["u74"])
    return result
