"""Fig. 20: extensions + optimized compiler vs native ISA + compiler.

"Compared with the native RISC-V ISA and compiler, the performance of
XT-910 with instruction extensions and optimized compiler has been
improved by about 20%."

Both compiler personalities come from :mod:`repro.toolchain`; both
binaries run on the same XT-910 timing model; the per-kernel speedup
is cycles(base) / cycles(optimized).
"""

from __future__ import annotations

from ..toolchain import CodegenOptions, build_program, fig20_kernels
from .parallel import run_cells
from .report import ExperimentResult, geomean
from .runner import run_on_core


def _fig20_cell(kernel_name: str, optimized: bool) -> int:
    """Cycles of one kernel under one compiler personality.

    Rebuilds the kernel from scratch (``fig20_kernels`` yields fresh
    objects), so ``build_program`` may mutate it freely and the cell
    pickles as two primitives.
    """
    kernel = next(k for k in fig20_kernels() if k.name == kernel_name)
    options = (CodegenOptions.optimized() if optimized
               else CodegenOptions.base())
    return run_on_core(build_program(kernel, options), "xt910").cycles


def run_fig20(quick: bool = False,
              jobs: int | None = None) -> ExperimentResult:
    result = ExperimentResult(
        experiment="fig20",
        title="instruction extensions + optimized compiler speedup")
    names = [k.name for k in fig20_kernels()]
    cells = [(name, optimized) for name in names
             for optimized in (False, True)]
    cycles = run_cells(_fig20_cell, cells, jobs)
    speedups = []
    for i, name in enumerate(names):
        base_cycles, opt_cycles = cycles[2 * i], cycles[2 * i + 1]
        speedup = base_cycles / opt_cycles
        speedups.append(speedup)
        result.add(name, None, round(speedup, 3), "x",
                   note=f"{base_cycles} -> {opt_cycles} cycles")
        result.metric(f"speedup.{name}", speedup)
        result.metric(f"cycles_base.{name}", base_cycles)
        result.metric(f"cycles_optimized.{name}", opt_cycles)
    result.add("geometric mean", 1.20, round(geomean(speedups), 3), "x",
               note="paper: 'improved by about 20%'")
    result.raw = {"speedups": speedups}
    result.metric("geomean", geomean(speedups))
    return result
