"""Fig. 20: extensions + optimized compiler vs native ISA + compiler.

"Compared with the native RISC-V ISA and compiler, the performance of
XT-910 with instruction extensions and optimized compiler has been
improved by about 20%."

Both compiler personalities come from :mod:`repro.toolchain`; both
binaries run on the same XT-910 timing model; the per-kernel speedup
is cycles(base) / cycles(optimized).
"""

from __future__ import annotations

import copy

from ..toolchain import CodegenOptions, build_program, fig20_kernels
from .report import ExperimentResult, geomean
from .runner import run_on_core


def run_fig20(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        experiment="fig20",
        title="instruction extensions + optimized compiler speedup")
    speedups = []
    for kernel in fig20_kernels():
        base_prog = build_program(copy.deepcopy(kernel),
                                  CodegenOptions.base())
        opt_prog = build_program(copy.deepcopy(kernel),
                                 CodegenOptions.optimized())
        base = run_on_core(base_prog, "xt910")
        opt = run_on_core(opt_prog, "xt910")
        speedup = base.cycles / opt.cycles
        speedups.append(speedup)
        result.add(kernel.name, None, round(speedup, 3), "x",
                   note=f"{base.cycles} -> {opt.cycles} cycles")
    result.add("geometric mean", 1.20, round(geomean(speedups), 3), "x",
               note="paper: 'improved by about 20%'")
    result.raw = {"speedups": speedups}
    return result
