"""Differential/property testing over randomly generated programs.

Hypothesis builds random (but always-terminating) programs from a menu
of ALU, multiply/divide, memory and branch templates; each program runs
through the whole stack — assembler, RVC compressor, emulator, pipeline
— and the invariants below must hold for every core preset:

* the timing model retires exactly the instructions the emulator ran,
* cycle counts are deterministic and bounded,
* compressed and uncompressed builds compute identical results,
* every executed instruction disassembles and reassembles to itself.
"""

from hypothesis import given, settings, strategies as st

from repro.asm import assemble
from repro.harness.runner import run_on_core
from repro.sim import Emulator

SCRATCH = "scratch"

_ALU_TEMPLATES = [
    "add {d}, {a}, {b}",
    "sub {d}, {a}, {b}",
    "xor {d}, {a}, {b}",
    "or {d}, {a}, {b}",
    "and {d}, {a}, {b}",
    "sll {d}, {a}, {c5}",
    "srl {d}, {a}, {c5}",
    "addi {d}, {a}, {imm}",
    "andi {d}, {a}, {imm}",
    "slli {d}, {a}, {sh}",
    "srli {d}, {a}, {sh}",
    "addw {d}, {a}, {b}",
    "mul {d}, {a}, {b}",
    "mulw {d}, {a}, {b}",
    "div {d}, {a}, {bnz}",
    "rem {d}, {a}, {bnz}",
    "srri {d}, {a}, {sh}",
    "mula {d}, {a}, {b}",
    "addsl {d}, {a}, {b}, 2",
]

_MEM_TEMPLATES = [
    "sd {a}, {moff}(s1)",
    "ld {d}, {moff}(s1)",
    "sw {a}, {moff}(s1)",
    "lw {d}, {moff}(s1)",
    "lbu {d}, {moff}(s1)",
]

_REGS = ["t0", "t1", "t2", "t3", "t4", "t5", "s2", "s3", "s4"]


@st.composite
def random_program(draw):
    body_len = draw(st.integers(4, 24))
    loop_count = draw(st.integers(1, 12))
    lines = [
        "    .data",
        "    .align 3",
        f"{SCRATCH}: .zero 256",
        "    .text",
        "_start:",
        f"    la s1, {SCRATCH}",
    ]
    # Seed registers with draw-dependent values.
    for reg in _REGS:
        seed = draw(st.integers(-1000, 1000))
        lines.append(f"    li {reg}, {seed}")
    lines.append(f"    li s0, {loop_count}")
    lines.append("loop:")
    for _ in range(body_len):
        use_mem = draw(st.booleans())
        template = draw(st.sampled_from(
            _MEM_TEMPLATES if use_mem else _ALU_TEMPLATES))
        d = draw(st.sampled_from(_REGS))
        a = draw(st.sampled_from(_REGS))
        b = draw(st.sampled_from(_REGS))
        line = template.format(
            d=d, a=a, b=b,
            bnz="s0",                           # never zero inside the loop
            c5=draw(st.sampled_from(_REGS)),
            imm=draw(st.integers(-512, 511)),
            sh=draw(st.integers(0, 31)),
            moff=draw(st.integers(0, 31)) * 8,
        )
        if "sll " in line or "srl " in line:
            pass  # shift amount register: masked by hardware semantics
        lines.append(f"    {line}")
    # Optional data-dependent forward branch inside the loop.
    if draw(st.booleans()):
        reg = draw(st.sampled_from(_REGS))
        lines.insert(len(lines) - body_len // 2,
                     f"    beqz {reg}, skip\n    addi {reg}, {reg}, 1\nskip:")
    lines.append("    addi s0, s0, -1")
    lines.append("    bnez s0, loop")
    lines.append("    li a0, 0")
    lines.append("    li a7, 93")
    lines.append("    ecall")
    return "\n".join(lines)


def checksum_memory(emulator, base_symbol, program):
    base = program.symbol(base_symbol)
    return emulator.state.memory.load_bytes(base, 256)


@settings(max_examples=25, deadline=None)
@given(random_program())
def test_timing_invariants(source):
    program = assemble(source, compress=True)
    emulator = Emulator(program)
    emulator.run(200_000)
    executed = emulator.state.instret

    result = run_on_core(program, "xt910", max_steps=200_000)
    stats = result.stats
    assert stats.instructions == executed
    assert stats.cycles >= executed / 8          # issue-width bound
    assert stats.cycles <= executed * 400 + 2000  # no runaway clocks
    # Determinism.
    again = run_on_core(program, "xt910", max_steps=200_000)
    assert again.cycles == result.cycles


@settings(max_examples=15, deadline=None)
@given(random_program())
def test_compression_preserves_semantics(source):
    plain = assemble(source, compress=False)
    small = assemble(source, compress=True)
    emu_plain = Emulator(plain)
    emu_plain.run(200_000)
    emu_small = Emulator(small)
    emu_small.run(200_000)
    assert emu_plain.state.instret == emu_small.state.instret
    assert checksum_memory(emu_plain, SCRATCH, plain) \
        == checksum_memory(emu_small, SCRATCH, small)
    assert emu_plain.state.regs[5:30] == emu_small.state.regs[5:30]


@settings(max_examples=10, deadline=None)
@given(random_program())
def test_executed_instructions_roundtrip_disasm(source):
    from repro.isa.disasm import disassemble
    from repro.isa.encoding import encode

    program = assemble(source, compress=False)
    emulator = Emulator(program)
    seen = set()
    for dyn in emulator.trace(50_000):
        if dyn.pc in seen:
            continue
        seen.add(dyn.pc)
        if dyn.inst.spec.fmt in ("B", "J", "U"):
            continue  # label-relative forms: covered by targeted tests
        text = disassemble(dyn.inst)
        reassembled = assemble(".text\n" + text + "\n")
        word = int.from_bytes(reassembled.text[:4], "little")
        assert word == encode(dyn.inst), text


@settings(max_examples=10, deadline=None)
@given(random_program(), st.sampled_from(["u74", "cortex-a73", "u54"]))
def test_all_presets_run_everything(source, core):
    program = assemble(source, compress=True)
    result = run_on_core(program, core, max_steps=200_000)
    assert result.cycles > 0
    assert result.stats.instructions > 0
