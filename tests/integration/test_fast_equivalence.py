"""Property test: block-translated execution == precise interpretation.

Hypothesis generates random short programs exercising the paths where
the fast engine could plausibly diverge from ``step()`` — forward and
backward branches, RVC-compressed encodings, ``fence.i`` (block
invalidation mid-run), stores near code, and the ``ecall`` exit shim —
and asserts both execution modes retire the identical DynInst
sequence, register file and memory digest.
"""

import hashlib

from hypothesis import given, settings, strategies as st

from repro.asm import assemble
from repro.sim import Emulator

SCRATCH = "scratch"

_TEMPLATES = [
    "add {d}, {a}, {b}",
    "sub {d}, {a}, {b}",
    "xor {d}, {a}, {b}",
    "addi {d}, {a}, {imm}",
    "slli {d}, {a}, {sh}",
    "mul {d}, {a}, {b}",
    "div {d}, {a}, {bnz}",
    "auipc {d}, {upper}",
    "sd {a}, {moff}(s1)",
    "ld {d}, {moff}(s1)",
    "sw {a}, {moff}(s1)",
    "lbu {d}, {moff}(s1)",
    "fence.i",
    "nop",
]

_REGS = ["t0", "t1", "t2", "t3", "s2", "s3"]

_FIELDS = ("seq", "pc", "next_pc", "taken", "target", "mem_addr",
           "mem_size", "vl", "sew", "div_bits")


@st.composite
def short_program(draw):
    body_len = draw(st.integers(3, 16))
    loop_count = draw(st.integers(1, 6))
    exit_code = draw(st.integers(0, 3))
    lines = [
        "    .data",
        "    .align 3",
        f"{SCRATCH}: .zero 256",
        "    .text",
        "_start:",
        f"    la s1, {SCRATCH}",
    ]
    for reg in _REGS:
        lines.append(f"    li {reg}, {draw(st.integers(-500, 500))}")
    lines.append(f"    li s0, {loop_count}")
    lines.append("loop:")
    for _ in range(body_len):
        template = draw(st.sampled_from(_TEMPLATES))
        lines.append("    " + template.format(
            d=draw(st.sampled_from(_REGS)),
            a=draw(st.sampled_from(_REGS)),
            b=draw(st.sampled_from(_REGS)),
            bnz="s0",
            imm=draw(st.integers(-512, 511)),
            sh=draw(st.integers(0, 31)),
            upper=draw(st.integers(0, 15)),
            moff=draw(st.integers(0, 31)) * 8,
        ))
    if draw(st.booleans()):
        reg = draw(st.sampled_from(_REGS))
        lines.append(f"    beqz {reg}, skip")
        lines.append(f"    addi {reg}, {reg}, 1")
        lines.append("skip:")
    lines.append("    addi s0, s0, -1")
    lines.append("    bnez s0, loop")
    lines.append(f"    li a0, {exit_code}")
    lines.append("    li a7, 93")
    lines.append("    ecall")
    return "\n".join(lines)


def _snap(dyn):
    return (dyn.inst.spec.mnemonic,) + tuple(
        getattr(dyn, f) for f in _FIELDS)


def _digest(emulator):
    mem = emulator.state.memory
    digest = hashlib.sha256()
    for base in sorted(mem._pages):
        digest.update(base.to_bytes(8, "little"))
        digest.update(bytes(mem._pages[base]))
    return digest.hexdigest()


@settings(max_examples=30, deadline=None)
@given(short_program(), st.booleans())
def test_fast_matches_precise(source, compress):
    program_bytes = assemble(source, compress=compress)
    precise = Emulator(program_bytes)
    precise_stream = [_snap(d) for d in precise.trace(100_000)]

    fast = Emulator(assemble(source, compress=compress))
    fast_stream = []
    for batch in fast.fast_trace(100_000):
        fast_stream.extend(_snap(d) for d in batch)

    assert precise_stream == fast_stream
    assert list(precise.state.regs) == list(fast.state.regs)
    assert precise.state.pc == fast.state.pc
    assert precise.state.instret == fast.state.instret
    assert precise.exit_code == fast.exit_code
    assert _digest(precise) == _digest(fast)
