"""Property test: tier-3 compiled execution == precise interpretation.

The tier-3 twin of ``test_fast_equivalence``: Hypothesis generates
random short programs over the same template pool (branches, RVC
encodings, ``fence.i`` mid-run, stores near code, the ``ecall`` exit
shim) and asserts the specializing translator retires the identical
DynInst sequence, register file, memory digest and CoreStats
comparables as ``Emulator.step()``.  The translator constant-folds
register indices and immediates into generated Python, so this is the
fuzz gate on the emitted code itself — every template that codegen
specializes (ALU forms, loads/stores, branches) is reachable here.
"""

import hashlib

from hypothesis import given, settings, strategies as st

from repro.asm import assemble
from repro.sim import Emulator
from repro.uarch.core import PipelineModel
from repro.uarch.presets import get_preset

from .test_fast_equivalence import _FIELDS, short_program


def _snap(dyn):
    return (dyn.inst.spec.mnemonic,) + tuple(
        getattr(dyn, f) for f in _FIELDS)


def _digest(emulator):
    mem = emulator.state.memory
    digest = hashlib.sha256()
    for base in sorted(mem._pages):
        digest.update(base.to_bytes(8, "little"))
        digest.update(bytes(mem._pages[base]))
    return digest.hexdigest()


@settings(max_examples=30, deadline=None)
@given(short_program(), st.booleans())
def test_tier3_matches_precise(source, compress):
    precise = Emulator(assemble(source, compress=compress))
    precise_stream = [_snap(d) for d in precise.trace(100_000)]

    tier3 = Emulator(assemble(source, compress=compress))
    tier3_stream = []
    for batch in tier3.codegen_trace(100_000):
        tier3_stream.extend(_snap(d) for d in batch)

    assert precise_stream == tier3_stream
    assert list(precise.state.regs) == list(tier3.state.regs)
    assert precise.state.pc == tier3.state.pc
    assert precise.state.instret == tier3.state.instret
    assert precise.exit_code == tier3.exit_code
    assert _digest(precise) == _digest(tier3)


@settings(max_examples=10, deadline=None)
@given(short_program())
def test_tier3_timing_stats_match_precise(source):
    """CoreStats comparables are tier-invariant: the timing model fed
    by ``codegen_trace`` must count exactly what the precise stream
    produces."""
    config = get_preset("xt910")

    precise_model = PipelineModel(config)
    precise_model.run(Emulator(assemble(source)).trace(100_000))

    tier3_model = PipelineModel(config)
    tier3_model.run(Emulator(assemble(source)).codegen_trace(100_000))

    assert (tier3_model.stats.as_comparable()
            == precise_model.stats.as_comparable())
