"""Pipeline-model behaviour tests: run tiny kernels, check the timing
model responds to microarchitecture features the way the paper says."""

from repro.asm import assemble
from repro.harness.runner import run_on_core
from repro.uarch.presets import get_preset
from dataclasses import replace


EXIT = "\nli a0, 0\nli a7, 93\necall\n"


def run(src: str, core="xt910", **preset_kw):
    config = get_preset(core, **preset_kw) if isinstance(core, str) else core
    return run_on_core(assemble(src + EXIT, compress=True), config)


LOOP_SUM = """
_start:
    li t0, 2000
    li t1, 0
loop:
    add t1, t1, t0
    addi t0, t0, -1
    bnez t0, loop
"""

INDEPENDENT_ALU = """
_start:
    li s0, 500
outer:
    addi t0, t0, 1
    addi t1, t1, 1
    addi t2, t2, 1
    addi t3, t3, 1
    addi t4, t4, 1
    addi t5, t5, 1
    addi s0, s0, -1
    bnez s0, outer
"""


class TestBasicTiming:
    def test_ipc_bounded_by_decode_width(self):
        r = run(INDEPENDENT_ALU)
        assert r.ipc <= 3.05

    def test_superscalar_beats_scalar(self):
        wide = run(INDEPENDENT_ALU, "xt910")
        narrow = run(INDEPENDENT_ALU, "u54")
        assert wide.cycles < narrow.cycles

    def test_ooo_beats_inorder_on_dependent_loads(self):
        src = """
        .data
        arr: .zero 512
        .text
        _start:
            li s0, 300
            la s1, arr
        outer:
            lw t0, 0(s1)     # load feeds a long chain
            mul t1, t0, t0
            add t2, t2, t1
            lw t3, 64(s1)    # independent work an OoO core overlaps
            lw t4, 128(s1)
            lw t5, 192(s1)
            add t6, t3, t4
            add t6, t6, t5
            addi s0, s0, -1
            bnez s0, outer
        """
        ooo = run(src, "xt910")
        ino = run(src, "u74")
        assert ooo.ipc > ino.ipc * 1.3

    def test_deterministic(self):
        a = run(LOOP_SUM)
        b = run(LOOP_SUM)
        assert a.cycles == b.cycles


class TestBranchHandling:
    def test_predictable_loop_low_mispredicts(self):
        r = run(LOOP_SUM)
        assert r.stats.branch_mispredict_rate < 0.01

    def test_random_branches_mispredict(self):
        # Data-dependent unpredictable branch: LCG parity decides.
        src = """
        _start:
            li s0, 1000
            li s1, 12345
            li s2, 1103515245
            li s3, 12345
        loop:
            mul s1, s1, s2
            add s1, s1, s3
            srli t0, s1, 16
            andi t0, t0, 1
            beqz t0, skip
            addi t1, t1, 1
        skip:
            addi s0, s0, -1
            bnez s0, loop
        """
        r = run(src)
        assert r.stats.direction_mispredicts > 100

    def test_mispredicts_cost_cycles(self):
        # Same loop body with a predictable vs LCG-random condition.
        template = """
        _start:
            li s0, 2000
            li s1, 12345
            li s2, 1103515245
        loop:
            mul s1, s1, s2
            addi s1, s1, 1013
            srli t0, s1, {shift}
            andi t0, t0, 1
            beqz t0, skip
            addi t1, t1, 1
        skip:
            addi s0, s0, -1
            bnez s0, loop
        """
        random_r = run(template.format(shift=16))
        # bit 0 of the LCG state follows a short deterministic pattern
        # the gshare history captures, so shift=0 is predictable.
        predictable_r = run(template.format(shift=0))
        assert random_r.stats.direction_mispredicts \
            > predictable_r.stats.direction_mispredicts + 100
        assert random_r.cycles > predictable_r.cycles

    def test_function_calls_use_ras(self):
        src = """
        _start:
            li s0, 200
        loop:
            call leaf
            addi s0, s0, -1
            bnez s0, loop
            j done
        leaf:
            addi t0, t0, 1
            ret
        done:
        """
        r = run(src)
        assert r.stats.ras_mispredicts <= 2

    def test_mispredict_penalty_scales_with_depth(self):
        src = """
        _start:
            li s0, 1000
            li s1, 12345
        loop:
            mul s1, s1, s1
            addi s1, s1, 7
            andi t0, s1, 1
            beqz t0, skip
            addi t1, t1, 1
        skip:
            addi s0, s0, -1
            bnez s0, loop
        """
        deep = get_preset("xt910")
        shallow = replace(deep, frontend=replace(deep.frontend, depth=3,
                                                 mispredict_extra=0))
        r_deep = run(src, deep)
        r_shallow = run(src, shallow)
        assert r_deep.cycles >= r_shallow.cycles


class TestLoopBufferEffect:
    def test_lbuf_supplies_small_loops(self):
        r = run(LOOP_SUM)
        assert r.stats.lbuf_supplied > 3000  # most of the loop body

    def test_lbuf_off_is_slower_or_equal(self):
        base = get_preset("xt910")
        no_lbuf = replace(base, frontend=replace(
            base.frontend,
            loop_buffer=replace(base.frontend.loop_buffer, enabled=False)))
        with_l = run(LOOP_SUM, base)
        without = run(LOOP_SUM, no_lbuf)
        assert without.stats.lbuf_supplied == 0
        # The LBUF never hurts (+-1 cycle of edge effects); its I$-access
        # elimination shows up in the fetch counters.
        assert with_l.cycles <= without.cycles + 2
        assert with_l.pipeline.hier.stats.inst_fetches \
            < without.pipeline.hier.stats.inst_fetches


class TestLsuBehaviour:
    def test_store_to_load_forwarding(self):
        src = """
        .data
        buf: .zero 64
        .text
        _start:
            la s1, buf
            li s0, 500
        loop:
            sd t0, 0(s1)
            ld t1, 0(s1)     # same address: must forward
            addi t0, t0, 1
            addi s0, s0, -1
            bnez s0, loop
        """
        r = run(src)
        assert r.stats.lsu_forwards > 400

    def test_dual_issue_lsu_helps_mixed_streams(self):
        src = """
        .data
        a: .zero 4096
        b: .zero 4096
        .text
        _start:
            la s1, a
            la s2, b
            li s0, 400
        loop:
            ld t0, 0(s1)
            sd t1, 0(s2)
            ld t2, 8(s1)
            sd t3, 8(s2)
            addi s1, s1, 16
            addi s2, s2, 16
            addi s0, s0, -1
            bnez s0, loop
        """
        base = get_preset("xt910")
        single = replace(base, lsu=replace(base.lsu, dual_issue=False))
        dual_r = run(src, base)
        single_r = run(src, single)
        assert dual_r.cycles < single_r.cycles

    def test_pseudo_double_store_decouples_data(self):
        # Store data arrives late (long mul chain); with the st.addr /
        # st.data split the address side proceeds early so the
        # following load can disambiguate without waiting.
        src = """
        .data
        buf: .zero 4096
        .text
        _start:
            la s1, buf
            li s0, 300
            li s3, 3
        loop:
            mul t0, s0, s3
            mul t0, t0, s3
            sd t0, 0(s1)      # data is late, address is early
            ld t1, 8(s1)      # different address: independent
            add t2, t2, t1
            addi s1, s1, 16
            addi s0, s0, -1
            bnez s0, loop
        """
        base = get_preset("xt910")
        fused = replace(base, lsu=replace(base.lsu,
                                          pseudo_dual_store=False))
        split_r = run(src, base)
        fused_r = run(src, fused)
        assert split_r.cycles <= fused_r.cycles

    def test_vector_load_touches_memory_like_scalar(self):
        src = """
        .data
        arr: .zero 8192
        .text
        _start:
            la s1, arr
            li s0, 64
            li t0, 4
        loop:
            vsetvli t1, t0, e32, m1
            vle32.v v1, (s1)
            vadd.vi v1, v1, 1
            vse32.v v1, (s1)
            addi s1, s1, 16
            addi s0, s0, -1
            bnez s0, loop
        """
        r = run(src)
        assert r.stats.vector_instructions > 150
        assert r.exit_code == 0


class TestStructural:
    def test_div_serializes_on_one_pipe(self):
        div_src = """
        _start:
            li s0, 200
            li t1, 97
            li t2, 7
        loop:
            div t3, t1, t2
            div t4, t1, t2
            addi s0, s0, -1
            bnez s0, loop
        """
        add_src = div_src.replace("div ", "add ")
        div_r = run(div_src)
        add_r = run(add_src)
        assert div_r.cycles > add_r.cycles * 2

    def test_rob_limits_runahead(self):
        # A DRAM-missing load at the head with a tiny ROB throttles
        # everything behind it.
        src = """
        .data
        arr: .zero 65536
        .text
        _start:
            li s0, 100
            la s1, arr
        loop:
            ld t0, 0(s1)
            addi t1, t1, 1
            addi t2, t2, 1
            addi t3, t3, 1
            addi t4, t4, 1
            addi s1, s1, 1024   # new line+page: misses
            addi s0, s0, -1
            bnez s0, loop
        """
        base = get_preset("xt910")
        tiny = replace(base, rob_entries=8)
        big_r = run(src, base)
        tiny_r = run(src, tiny)
        assert tiny_r.cycles >= big_r.cycles

    def test_stats_consistency(self):
        r = run(LOOP_SUM)
        s = r.stats
        assert s.instructions > 0
        assert s.cycles > 0
        assert s.uops >= s.instructions
        assert 0 < s.ipc <= 8
