"""Unit tests for the pipeline's scheduling primitives."""

from hypothesis import given, settings, strategies as st

from repro.uarch.core import PipeGroup, SlotAllocator


class TestSlotAllocator:
    def test_fills_width_then_advances(self):
        alloc = SlotAllocator(3)
        assert [alloc.allocate(10) for _ in range(4)] == [10, 10, 10, 11]

    def test_jump_forward_resets_count(self):
        alloc = SlotAllocator(2)
        alloc.allocate(5)
        alloc.allocate(5)
        assert alloc.allocate(9) == 9
        assert alloc.allocate(9) == 9
        assert alloc.allocate(9) == 10

    def test_late_earliest_fills_current_cycle(self):
        alloc = SlotAllocator(2)
        alloc.allocate(10)
        assert alloc.allocate(3) == 10  # can't go back in time

    @given(st.lists(st.integers(0, 1000), min_size=1, max_size=200),
           st.integers(1, 8))
    @settings(max_examples=50, deadline=None)
    def test_monotonic_and_bandwidth(self, earliests, width):
        alloc = SlotAllocator(width)
        grants = [alloc.allocate(e) for e in earliests]
        # Monotonic output.
        assert grants == sorted(grants)
        # Never earlier than requested.
        for earliest, grant in zip(earliests, grants):
            assert grant >= earliest
        # Bandwidth respected.
        from collections import Counter

        for _cycle, count in Counter(grants).items():
            assert count <= width


class TestPipeGroup:
    def test_backfill_into_idle_cycles(self):
        pipe = PipeGroup(1)
        # An op books cycle 100; a younger ready-at-5 op backfills.
        late = pipe.earliest(100)
        pipe.book(late)
        early = pipe.earliest(5)
        assert early == 5
        pipe.book(early)

    def test_capacity_per_cycle(self):
        pipe = PipeGroup(2)
        for _ in range(2):
            pipe.book(pipe.earliest(7))
        assert pipe.earliest(7) == 8

    def test_unpipelined_occupancy(self):
        pipe = PipeGroup(1)
        start = pipe.earliest(10, occupy=5)
        pipe.book(start, occupy=5)
        # The next op cannot start inside the occupied window.
        assert pipe.earliest(10) == 15
        assert pipe.earliest(20) == 20

    def test_occupy_requires_contiguous_window(self):
        pipe = PipeGroup(1)
        pipe.book(12)  # single-cycle booking in the middle
        start = pipe.earliest(10, occupy=5)
        assert start == 13  # window [10,15) blocked by cycle 12

    def test_prune_keeps_semantics_near_horizon(self):
        pipe = PipeGroup(1)
        for cycle in range(5000):
            pipe.book(cycle)
        pipe.prune(4000)
        assert pipe.earliest(4500) == 5000

    @given(st.lists(st.tuples(st.integers(0, 300), st.integers(1, 4)),
                    min_size=1, max_size=100), st.integers(1, 4))
    @settings(max_examples=50, deadline=None)
    def test_never_overbooks(self, ops, count):
        pipe = PipeGroup(count)
        for ready, occupy in ops:
            start = pipe.earliest(ready, occupy)
            assert start >= ready
            pipe.book(start, occupy)
        assert all(n <= count for n in pipe.used.values())
