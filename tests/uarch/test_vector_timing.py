"""Vector-slice timing tests (section VII)."""

from dataclasses import replace

from repro.asm import assemble
from repro.harness.runner import run_on_core
from repro.uarch.presets import get_preset

EXIT = "\nli a0, 0\nli a7, 93\necall\n"


def run(src, config="xt910"):
    cfg = get_preset(config) if isinstance(config, str) else config
    return run_on_core(assemble(src + EXIT, compress=True), cfg)


VEC_LOOP = """
    .data
a: .zero 2048
    .text
_start:
    la s0, a
    li s1, 32
loop:
    li t0, 8
    vsetvli t0, t0, e16, m1
    vle16.v v1, (s0)
    vadd.vv v2, v1, v1
    vse16.v v2, (s0)
    addi s0, s0, 16
    addi s1, s1, -1
    bnez s1, loop
"""


class TestVectorTiming:
    def test_vector_instructions_counted(self):
        result = run(VEC_LOOP)
        assert result.stats.vector_instructions >= 32 * 4

    def test_beats_scale_with_vl(self):
        # The slice datapath produces 256 result bits per cycle: an
        # e16/m4 op over 32 elements (512 bits) needs 2 beats, while
        # the m1 version fits in one.
        narrow = run(VEC_LOOP)
        wide = run(VEC_LOOP.replace("li t0, 8", "li t0, 32")
                   .replace("e16, m1", "e16, m4")
                   .replace("addi s0, s0, 16", "addi s0, s0, 64")
                   .replace("li s1, 32", "li s1, 8"))
        wide_alu_beats = wide.stats.vector_beats
        assert wide_alu_beats == 2 * 8  # 2 beats x 8 vadd ops
        assert narrow.stats.vector_beats == 32  # 1 beat x 32 vadd ops

    def test_two_slices_beat_one(self):
        base = get_preset("xt910")
        one_slice = replace(base, fu=replace(base.fu, vec_slices=1))
        # Independent vector ops saturate the slice pipes.
        src = """
    .data
a: .zero 4096
    .text
_start:
    la s0, a
    li s1, 64
loop:
    li t0, 8
    vsetvli t0, t0, e16, m1
    vle16.v v1, (s0)
    vadd.vv v2, v1, v1
    vadd.vv v3, v1, v1
    vadd.vv v4, v2, v2
    vadd.vv v5, v3, v3
    vse16.v v4, (s0)
    addi s0, s0, 16
    addi s1, s1, -1
    bnez s1, loop
"""
        two = run(src, base)
        one = run(src, one_slice)
        assert two.cycles < one.cycles

    def test_vector_divide_is_slow(self):
        div_src = VEC_LOOP.replace("vadd.vv v2, v1, v1",
                                   "vdiv.vv v2, v1, v1")
        add = run(VEC_LOOP)
        div = run(div_src)
        assert div.cycles > add.cycles

    def test_novec_core_still_runs_scalar(self):
        scalar = """
_start:
    li t0, 100
loop:
    addi t0, t0, -1
    bnez t0, loop
"""
        result = run(scalar, "xt910-novec")
        assert result.exit_code == 0


class TestPresetSanity:
    def test_all_presets_instantiate(self):
        from repro.uarch.presets import PRESETS

        for name, factory in PRESETS.items():
            config = factory()
            assert config.name == name
            assert config.decode_width >= 1
            assert config.mem.l1d_size > 0

    def test_xt910_matches_paper_parameters(self):
        cfg = get_preset("xt910")
        assert cfg.decode_width == 3           # "decode 3 instructions"
        assert cfg.rename_width == 4           # "rename up to 4"
        assert cfg.issue_width == 8            # "issue up to 8"
        assert cfg.rob_entries == 192          # "ROB can hold 192"
        assert cfg.fu.alu_count == 2           # "two single-cycle ALUs"
        assert cfg.fu.bju_count == 1           # "one branch jump unit"
        assert cfg.fu.fpu_count == 2           # "two scalar FPUs"
        assert cfg.fu.vec_slices == 2          # "two vector slices"
        assert cfg.lsu.dual_issue              # "dual-issue OoO LSU"
        assert cfg.lsu.pseudo_dual_store       # "pseudo double store"
        assert cfg.frontend.loop_buffer.entries == 16
        assert cfg.frontend.btb.l0_entries == 16
        assert cfg.frontend.btb.l1_entries >= 1024
        assert cfg.vlen == 128                 # recommended VLEN/SLEN

    def test_inorder_cores_flagged(self):
        for name in ("u74", "u54", "cortex-a55", "cortex-a53", "swerv",
                     "rocket"):
            assert not get_preset(name).out_of_order, name
        for name in ("xt910", "cortex-a73"):
            assert get_preset(name).out_of_order, name
