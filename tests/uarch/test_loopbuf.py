"""Loop buffer unit tests (section III.C)."""

from repro.uarch import LoopBuffer, LoopBufferConfig


def spin(lbuf, pc=0x1040, target=0x1000, body=8, times=5):
    for _ in range(times):
        lbuf.observe_branch(pc, target, True, body)


class TestCapture:
    def test_small_loop_captured(self):
        lbuf = LoopBuffer()
        spin(lbuf, times=3)
        assert lbuf.active
        assert lbuf.stats.captures == 1

    def test_single_iteration_not_captured(self):
        lbuf = LoopBuffer()
        spin(lbuf, times=1)
        assert not lbuf.active

    def test_big_body_rejected(self):
        lbuf = LoopBuffer(LoopBufferConfig(entries=16))
        spin(lbuf, body=40, times=5)
        assert not lbuf.active

    def test_exact_capacity_accepted(self):
        lbuf = LoopBuffer(LoopBufferConfig(entries=16))
        spin(lbuf, body=16, times=5)
        assert lbuf.active

    def test_forward_branch_does_not_capture(self):
        lbuf = LoopBuffer()
        for _ in range(5):
            lbuf.observe_branch(0x1000, 0x1040, True, 8)  # forward
        assert not lbuf.active

    def test_disabled_never_captures(self):
        lbuf = LoopBuffer(LoopBufferConfig(enabled=False))
        spin(lbuf, times=10)
        assert not lbuf.active


class TestCoverage:
    def test_covers_body_range(self):
        lbuf = LoopBuffer()
        spin(lbuf)
        assert lbuf.covers(0x1000)
        assert lbuf.covers(0x1020)
        assert lbuf.covers(0x1040)
        assert not lbuf.covers(0x1044)
        assert not lbuf.covers(0x0FFC)

    def test_inactive_covers_nothing(self):
        lbuf = LoopBuffer()
        assert not lbuf.covers(0x1000)


class TestExit:
    def test_fallthrough_exits(self):
        lbuf = LoopBuffer()
        spin(lbuf)
        lbuf.observe_branch(0x1040, 0x1000, False, 8)  # loop exit
        assert not lbuf.active
        assert lbuf.stats.exits == 1

    def test_other_backward_branch_exits(self):
        lbuf = LoopBuffer()
        spin(lbuf)
        lbuf.observe_branch(0x1030, 0x1008, True, 4)  # inner backward jump
        assert not lbuf.active

    def test_forward_branch_inside_body_ok(self):
        # if/else inside the loop body must not break LBUF streaming.
        lbuf = LoopBuffer()
        spin(lbuf)
        lbuf.observe_branch(0x1010, 0x1020, True, 8)  # forward skip
        assert lbuf.active

    def test_recapture_after_exit(self):
        lbuf = LoopBuffer()
        spin(lbuf)
        lbuf.observe_branch(0x1040, 0x1000, False, 8)
        spin(lbuf)
        assert lbuf.active
        assert lbuf.stats.captures == 2


class TestFlush:
    def test_context_switch_flushes(self):
        lbuf = LoopBuffer()
        spin(lbuf)
        lbuf.flush()
        assert not lbuf.active
        assert lbuf.stats.flushes == 1

    def test_supply_counting(self):
        lbuf = LoopBuffer()
        spin(lbuf)
        lbuf.supply(3)
        assert lbuf.stats.supplied_insts == 3
