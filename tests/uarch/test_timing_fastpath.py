"""Equivalence gates for the timing-model fast path.

The optimised :class:`repro.uarch.core.PipelineModel` (static timing
cache, ring-array scheduling structures, block-batched monolith) is
only allowed to be fast because it is *stats-identical* to the slow
model.  Three independent oracles pin that down:

1. the frozen pre-fast-path copy
   (:class:`repro.uarch.refmodel.ReferencePipelineModel`), replaying
   the same dynamic trace;
2. the committed ``golden_stats.json`` snapshot, generated with the
   reference model on every bundled workload — catches drift that a
   same-commit differential cannot (both models changing together);
3. the model's own staged per-instruction path (``feed``/``finish``),
   which the monolith is an inlined port of.

Plus the operational properties the fast path must not break:
determinism across runs, ``_reset_run_state`` completeness on model
reuse, static-cache revalidation by instruction identity, and bounded
``PipeGroup`` memory over long runs.
"""

from __future__ import annotations

import copy
import json
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.harness.runner import run_on_core
from repro.mem.hierarchy import MemoryHierarchy
from repro.sim.emulator import Emulator, WatchdogExpired
from repro.uarch.core import _WINDOW, PipeGroup, PipelineModel
from repro.uarch.presets import get_preset
from repro.uarch.refmodel import ReferencePipelineModel
from repro.workloads import all_workloads

GOLDEN = json.loads(
    (Path(__file__).parent / "golden_stats.json").read_text())

#: Workloads replayed through both models in-process (the reference
#: model is ~3x slower, so this is a representative sample, not the
#: full suite: int-heavy, branchy, memory-heavy and vector kernels).
DIFF_WORKLOADS = ["coremark-list", "coremark-state", "eembc-canrdr",
                  "vec-mac16"]

#: Workloads checked against the committed golden snapshot on every CI
#: run; the full 33-workload sweep is the bench job's differential.
GOLDEN_SUBSET = ["coremark-list", "coremark-matrix", "coremark-state",
                 "coremark-crc", "eembc-canrdr", "eembc-idctrn",
                 "nbench-idea", "stream-triad", "vec-mac16",
                 "dhrystone-like"]


def _workload(name: str):
    for workload in all_workloads():
        if workload.name == name:
            return workload
    raise KeyError(name)


def _run_model(model_cls, program, max_steps=None):
    config = get_preset("xt910")
    model = model_cls(config, MemoryHierarchy(config.mem))
    emulator = Emulator(program)
    return model.run(emulator.fast_trace(max_steps))


@pytest.mark.parametrize("name", DIFF_WORKLOADS)
def test_fast_path_matches_reference_oracle(name):
    program = _workload(name).program()
    ref = _run_model(ReferencePipelineModel, program)
    fast = _run_model(PipelineModel, program)
    assert fast.as_comparable() == ref.as_comparable()


@pytest.mark.parametrize("name", GOLDEN_SUBSET)
def test_matches_committed_golden_stats(name):
    result = run_on_core(_workload(name).program(), "xt910")
    got = result.stats.as_comparable()
    want = {key: value for key, value in GOLDEN[name].items()
            if key in got}
    assert got == want


@pytest.mark.parametrize("name", GOLDEN_SUBSET)
def test_tier3_matches_committed_golden_stats(name):
    """The specializing translator feeds the same timing model the
    same stream: its stats must hit the frozen oracle exactly, cold
    (this test's cache dir starts empty) — the warm half lives in
    tests/sim/test_codegen.py."""
    result = run_on_core(_workload(name).program(), "xt910", tier=3)
    got = result.stats.as_comparable()
    want = {key: value for key, value in GOLDEN[name].items()
            if key in got}
    assert got == want
    assert result.stats.extra["codegen_blocks_compiled"] >= 1


def test_golden_file_covers_every_bundled_workload():
    assert sorted(GOLDEN) == sorted(w.name for w in all_workloads())


def test_feed_matches_run():
    """The staged per-instruction path (the readable spec) and the
    batched monolith must produce identical statistics."""
    program = _workload("coremark-list").program()
    config = get_preset("xt910")

    batched = PipelineModel(config, MemoryHierarchy(config.mem))
    run_stats = batched.run(Emulator(program).fast_trace(None))

    staged = PipelineModel(config, MemoryHierarchy(config.mem))
    for dyn in Emulator(program).trace(None):
        staged.feed(dyn)
    feed_stats = staged.finish()

    assert feed_stats.as_comparable() == run_stats.as_comparable()


def _stats_for(model, program, max_steps):
    """Run *program* through *model*; a trace cut short by the step
    watchdog is closed out with ``finish()`` — the monolith's
    try/finally write-back must leave consistent, deterministic stats
    even when the feeding generator raises mid-run."""
    try:
        model.run(Emulator(program).fast_trace(max_steps))
    except WatchdogExpired:
        model.finish()
    return model.stats.as_comparable()


@settings(max_examples=6, deadline=None)
@given(name=st.sampled_from(["coremark-list", "stream-copy",
                             "nbench-fourier"]),
       max_steps=st.one_of(st.none(),
                           st.integers(min_value=200, max_value=4000)))
def test_determinism_and_reset_completeness(name, max_steps):
    """Identical inputs give identical stats — from a fresh model and
    from a reused one (``_reset_run_state`` must forget everything;
    the hierarchy is external state and is swapped fresh)."""
    program = _workload(name).program()
    config = get_preset("xt910")

    fresh = PipelineModel(config, MemoryHierarchy(config.mem))
    first = _stats_for(fresh, program, max_steps)

    reused = PipelineModel(config, MemoryHierarchy(config.mem))
    second = _stats_for(reused, program, max_steps)
    assert second == first

    reused.hier = MemoryHierarchy(config.mem)
    third = _stats_for(reused, program, max_steps)
    assert third == first


def test_tcache_revalidates_on_new_instruction_object():
    """The static cache is keyed by PC but validated by ``inst``
    identity: a re-decode (fence.i, icache maintenance) produces a new
    ``Instruction`` object and must force a rebuild."""
    program = _workload("coremark-list").program()
    model = PipelineModel(get_preset("xt910"))
    dyn = next(iter(Emulator(program).trace(4)))

    info = model._info(dyn)
    assert model._info(dyn) is info          # same object: cache hit

    redecoded = copy.copy(dyn)
    redecoded.inst = copy.copy(dyn.inst)     # fresh Instruction object
    rebuilt = model._info(redecoded)
    assert rebuilt is not info               # identity miss: rebuilt
    assert rebuilt.src_rids == info.src_rids
    assert model._info(redecoded) is rebuilt  # and re-cached


def test_pipegroup_memory_bounded_over_one_million_cycles():
    """The booking window recycles in place: a synthetic 1M-cycle run
    must not grow the ring or leak bookings into the far dict."""
    group = PipeGroup(2)
    ring_len = len(group._ring)
    for cycle in range(0, 1_000_000, 5):
        slot = group.earliest(cycle, occupy=2)
        group.book(slot, occupy=2)
        if cycle % 8192 == 0 and cycle:
            group.prune(cycle - 64)
    assert len(group._ring) == ring_len == _WINDOW
    assert len(group._far) < 64
    # and the window actually advanced with the pruning
    assert group._base > 0
