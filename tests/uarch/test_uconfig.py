"""The declarative config layer (``repro.uarch.uconfig``).

Covers the schema negatives the validator exists for (unknown key,
wrong type, out-of-range width — each reported with its dotted path),
overlay precedence and ``replace: true`` semantics, a hypothesis
round-trip property (document -> CoreConfig -> document is a fixed
point under random knob edits), preset<->committed-config equivalence,
and golden-stats bit-identity for a core built from the committed
``configs/xt910.yaml`` instead of the Python constructor.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.harness.runner import run_on_core
from repro.uarch import uconfig
from repro.uarch.config import CoreConfig
from repro.uarch.presets import PRESETS, get_preset
from repro.workloads import all_workloads

REPO_ROOT = Path(__file__).resolve().parents[2]
CONFIGS = REPO_ROOT / "configs"
GOLDEN = json.loads(
    (Path(__file__).parent / "golden_stats.json").read_text())


def _workload(name: str):
    for workload in all_workloads():
        if workload.name == name:
            return workload
    raise KeyError(name)


# -- schema ------------------------------------------------------------------


def test_schema_covers_every_dataclass_leaf():
    knobs = uconfig.schema()
    assert knobs["issue_width"] == "int"
    assert knobs["frontend.btb.l1_entries"] == "int"
    assert knobs["mem.l1_prefetch.distance"] == "int"
    assert knobs["vlen"] == "int"
    assert knobs["mem.l1_prefetch.mode"] == "str"
    # Derived from the dataclass tree: top-level field count matches.
    top = {path.split(".")[0] for path in knobs}
    assert top == {f.name for f in dataclasses.fields(CoreConfig)}


def test_unknown_key_names_the_path_and_known_keys():
    with pytest.raises(uconfig.UconfigError) as excinfo:
        uconfig.validate({"frontend": {"depht": 7}})
    message = str(excinfo.value)
    assert "frontend.depht" in message
    assert "unknown key" in message
    assert "depth" in message          # the known-keys hint


def test_wrong_type_is_rejected():
    with pytest.raises(uconfig.UconfigError) as excinfo:
        uconfig.validate({"rob_entries": "lots"})
    assert "expected int" in str(excinfo.value)
    with pytest.raises(uconfig.UconfigError):
        uconfig.validate({"out_of_order": 1})        # bool, not int
    with pytest.raises(uconfig.UconfigError):
        uconfig.validate({"frontend": 7})            # mapping expected


def test_out_of_range_width_is_rejected():
    for bad in (0, -3, 65):
        with pytest.raises(uconfig.UconfigError) as excinfo:
            uconfig.validate({"decode_width": bad})
        assert "out of range 1..64" in str(excinfo.value)


def test_domain_checks_positive_choice_and_pow2():
    with pytest.raises(uconfig.UconfigError):
        uconfig.validate({"rob_entries": 0})
    with pytest.raises(uconfig.UconfigError):
        uconfig.validate({"mem": {"l1_prefetch": {"mode": "psychic"}}})
    with pytest.raises(uconfig.UconfigError):
        uconfig.validate({"vlen": 96})               # not a power of two
    uconfig.validate({"vlen": 256})                  # fine


def test_every_problem_reported_in_one_pass():
    with pytest.raises(uconfig.UconfigError) as excinfo:
        uconfig.validate({"decode_width": 0, "nonsense": 1,
                          "frontend": {"depth": "deep"}})
    assert len(excinfo.value.problems) == 3


def test_replace_marker_invalid_in_resolved_document():
    with pytest.raises(uconfig.UconfigError) as excinfo:
        uconfig.validate({"frontend": {"replace": True, "depth": 7}})
    assert "overlay-merge marker" in str(excinfo.value)


# -- overlay merge -----------------------------------------------------------


def test_overlay_scalar_overwrites_and_mappings_merge():
    base = uconfig.config_to_doc(get_preset("xt910"))
    merged = uconfig.merge_overlay(
        base, {"rob_entries": 256, "frontend": {"depth": 9}})
    assert merged["rob_entries"] == 256
    assert merged["frontend"]["depth"] == 9
    # untouched siblings survive the merge
    assert merged["frontend"]["btb"] == base["frontend"]["btb"]
    # neither input was mutated
    assert base["rob_entries"] == get_preset("xt910").rob_entries


def test_overlay_precedence_is_last_wins():
    config = uconfig.resolve_core(
        {"name": "x", "rob_entries": 100},
        extends=())
    assert config.rob_entries == 100
    base = {"name": "x", "rob_entries": 100}
    first = {"rob_entries": 120, "iq_entries": 24}
    second = {"rob_entries": 140}
    doc = uconfig.merge_overlay(uconfig.merge_overlay(base, first),
                                second)
    merged = uconfig.config_from_doc(doc)
    assert merged.rob_entries == 140     # second overlay wins
    assert merged.iq_entries == 24       # first overlay survives


def test_replace_true_swaps_the_whole_object():
    base = uconfig.config_to_doc(get_preset("xt910"))
    merged = uconfig.merge_overlay(
        base,
        {"mem": {"l1_prefetch": {"replace": True, "enabled": False}}})
    # replace semantics: every other prefetch knob resets to default
    config = uconfig.config_from_doc(merged)
    assert config.mem.l1_prefetch.enabled is False
    defaults = type(config.mem.l1_prefetch)(enabled=False)
    assert config.mem.l1_prefetch == defaults
    # merge semantics on the same doc would have kept the base knobs
    kept = uconfig.config_from_doc(uconfig.merge_overlay(
        base, {"mem": {"l1_prefetch": {"enabled": False}}}))
    assert kept.mem.l1_prefetch.streams == \
        get_preset("xt910").mem.l1_prefetch.streams


def test_apply_overrides_dotted_paths():
    base = uconfig.config_to_doc(get_preset("xt910"))
    doc = uconfig.apply_overrides(
        base, {"frontend.depth": 9, "mem.dram.latency": 200})
    config = uconfig.config_from_doc(doc)
    assert config.frontend.depth == 9
    assert config.mem.dram.latency == 200


# -- round trip --------------------------------------------------------------


@pytest.mark.parametrize("name", sorted(PRESETS))
def test_preset_round_trip_and_digest_stability(name):
    config = get_preset(name)
    doc = uconfig.config_to_doc(config)
    rebuilt = uconfig.config_from_doc(doc)
    assert rebuilt == config
    assert uconfig.config_digest(doc) == uconfig.config_digest(rebuilt)


@settings(max_examples=30, deadline=None)
@given(
    rob=st.integers(min_value=1, max_value=512),
    width=st.integers(min_value=1, max_value=64),
    depth=st.integers(min_value=1, max_value=20),
    latency=st.integers(min_value=1, max_value=1000),
    vec=st.booleans(),
)
def test_roundtrip_property(rob, width, depth, latency, vec):
    """doc -> CoreConfig -> doc is a fixed point for any legal edit."""
    base = uconfig.config_to_doc(get_preset("xt910"))
    doc = uconfig.apply_overrides(base, {
        "rob_entries": rob,
        "issue_width": width,
        "frontend.depth": depth,
        "mem.dram.latency": latency,
        "vector_enabled": vec,
    })
    config = uconfig.config_from_doc(doc)
    assert config.rob_entries == rob
    assert config.issue_width == width
    dumped = uconfig.config_to_doc(config)
    assert uconfig.config_from_doc(dumped) == config
    assert uconfig.config_to_doc(uconfig.config_from_doc(dumped)) \
        == dumped
    # the digest is over the resolved document: stable across trips
    assert uconfig.config_digest(doc) == uconfig.config_digest(dumped)


def test_partial_docs_digest_like_their_resolution():
    full = uconfig.config_to_doc(CoreConfig(name="x", rob_entries=100))
    partial = {"name": "x", "rob_entries": 100}
    assert uconfig.config_digest(partial) == uconfig.config_digest(full)


# -- file I/O ----------------------------------------------------------------


def test_json_dump_load_round_trip(tmp_path):
    config = get_preset("u74")
    path = str(tmp_path / "u74.json")
    uconfig.dump_config(config, path, description="round trip")
    assert uconfig.load_config(path) == config
    doc = uconfig.load_doc(path)
    assert doc["description"] == "round trip"


@pytest.mark.skipif(uconfig.yaml is None, reason="PyYAML not installed")
def test_yaml_dump_load_round_trip(tmp_path):
    config = get_preset("xt910")
    path = str(tmp_path / "xt910.yaml")
    uconfig.dump_config(config, path)
    assert uconfig.load_config(path) == config


def test_extends_files_merge_in_order(tmp_path):
    o1 = str(tmp_path / "a.json")
    o2 = str(tmp_path / "b.json")
    Path(o1).write_text(json.dumps({"rob_entries": 100,
                                    "iq_entries": 24}))
    Path(o2).write_text(json.dumps({"rob_entries": 120}))
    config = uconfig.resolve_core("xt910", extends=(o1, o2))
    assert config.rob_entries == 120
    assert config.iq_entries == 24


def test_resolve_core_unknown_name_lists_presets():
    with pytest.raises(uconfig.UconfigError) as excinfo:
        uconfig.resolve_core("nosuchcore")
    message = str(excinfo.value)
    assert "xt910" in message and "config document path" in message


# -- committed configs -------------------------------------------------------


def test_committed_configs_match_presets():
    problems = uconfig.check_committed_configs(str(CONFIGS))
    assert problems == []


@pytest.mark.parametrize("name", sorted(PRESETS))
def test_each_preset_has_committed_equal_config(name):
    path = CONFIGS / f"{name}.yaml"
    assert path.exists(), f"configs/{name}.yaml is not committed"
    if uconfig.yaml is None:
        pytest.skip("PyYAML not installed")
    assert uconfig.load_config(str(path)) == get_preset(name)


@pytest.mark.skipif(uconfig.yaml is None, reason="PyYAML not installed")
def test_golden_stats_bit_identical_from_committed_config():
    """A core built from configs/xt910.yaml produces the exact
    committed golden stats — file-based and constructor-based configs
    are interchangeable down to the last counter."""
    config = uconfig.load_config(str(CONFIGS / "xt910.yaml"))
    for name in ("coremark-list", "blockchain-base"):
        result = run_on_core(_workload(name).program(), config)
        got = result.stats.as_comparable()
        want = {key: value for key, value in GOLDEN[name].items()
                if key in got}
        assert got == want


@pytest.mark.skipif(uconfig.yaml is None, reason="PyYAML not installed")
def test_committed_overlays_merge_onto_xt910():
    overlays = sorted((CONFIGS / "overlays").glob("*.yaml"))
    assert overlays, "no committed overlay examples"
    for path in overlays:
        config = uconfig.resolve_core("xt910", extends=(str(path),))
        assert isinstance(config, CoreConfig)
