"""Unit tests for the branch prediction stack (sections III.A, III.B)."""

from repro.uarch import (
    BtbConfig,
    BtbLevel,
    CascadedBtb,
    DirectionConfig,
    HybridDirectionPredictor,
    IndirectPredictor,
    ReturnAddressStack,
)


class TestDirectionPredictor:
    def test_learns_always_taken(self):
        p = HybridDirectionPredictor()
        for _ in range(20):
            p.update(0x1000, True)
        assert p.predict(0x1000) is True
        assert p.stats.accuracy > 0.8

    def test_learns_always_not_taken(self):
        p = HybridDirectionPredictor()
        for _ in range(20):
            p.update(0x1000, False)
        assert p.predict(0x1000) is False

    def test_gshare_learns_alternating_pattern(self):
        # Bimodal alone cannot predict T,N,T,N...; gshare with history can.
        p = HybridDirectionPredictor()
        mispredicts_late = 0
        for i in range(400):
            taken = bool(i % 2)
            wrong = p.update(0x2000, taken)
            if i >= 200:
                mispredicts_late += wrong
        assert mispredicts_late <= 10

    def test_loop_exit_pattern(self):
        # Taken 15x then not-taken once: accuracy should approach 15/16.
        p = HybridDirectionPredictor()
        wrong = 0
        total = 0
        for i in range(1600):
            taken = (i % 16) != 15
            w = p.update(0x3000, taken)
            if i >= 800:
                wrong += w
                total += 1
        assert wrong / total < 0.10

    def test_independent_branches_do_not_destroy_each_other(self):
        p = HybridDirectionPredictor()
        wrong = 0
        for i in range(200):
            a = p.update(0x1000, True)
            b = p.update(0x2000, False)
            if i >= 50:
                wrong += a + b
        assert wrong <= 6  # both biased branches learned despite aliasing

    def test_two_level_buffer_flag(self):
        with_buf = HybridDirectionPredictor(DirectionConfig(
            two_level_buffers=True))
        without = HybridDirectionPredictor(DirectionConfig(
            two_level_buffers=False))
        assert with_buf.consecutive_ok
        assert not without.consecutive_ok

    def test_stats_counting(self):
        p = HybridDirectionPredictor()
        for _ in range(10):
            p.update(0x1000, True)
        assert p.stats.predictions == 10


class TestCascadedBtb:
    def test_miss_then_hits(self):
        btb = CascadedBtb()
        level, target = btb.predict(0x1000)
        assert level is BtbLevel.MISS and target is None
        btb.update(0x1000, 0x2000, target)
        level, target = btb.predict(0x1000)
        assert target == 0x2000
        assert level in (BtbLevel.L0, BtbLevel.L1)

    def test_l0_capacity_16(self):
        btb = CascadedBtb(BtbConfig(l0_entries=16))
        for i in range(32):
            pc = 0x1000 + i * 8
            btb.update(pc, pc + 0x100, None)
        # Oldest entries fell out of L0 but stay in L1.
        level, target = btb.predict(0x1000)
        assert level is BtbLevel.L1
        assert target == 0x1100
        # Newest are still L0.
        level, _ = btb.predict(0x1000 + 31 * 8)
        assert level is BtbLevel.L0

    def test_target_mispredict_detected(self):
        btb = CascadedBtb()
        btb.update(0x1000, 0x2000, None)
        _, predicted = btb.predict(0x1000)
        assert btb.update(0x1000, 0x3000, predicted)  # target changed
        assert btb.stats.target_mispredicts == 1
        _, new_target = btb.predict(0x1000)
        assert new_target == 0x3000

    def test_l1_set_conflict_eviction(self):
        btb = CascadedBtb(BtbConfig(l0_entries=2, l1_entries=8, l1_ways=2))
        # All four pcs map to L1 set 0 (2 ways): the two oldest are
        # evicted from both L1 and the 2-entry L0.
        pcs = [0x1000 + i * 8 for i in range(4)]
        for pc in pcs:
            btb.update(pc, pc + 0x40, None)
        for pc in pcs:
            btb.predict(pc)
        assert btb.stats.misses == 2
        assert btb.stats.l0_hits == 2


class TestRas:
    def test_push_pop_nests(self):
        ras = ReturnAddressStack(16)
        ras.push(0x100)
        ras.push(0x200)
        assert ras.predict_pop() == 0x200
        assert ras.predict_pop() == 0x100

    def test_underflow_returns_none(self):
        ras = ReturnAddressStack(4)
        assert ras.predict_pop() is None

    def test_overflow_drops_oldest(self):
        ras = ReturnAddressStack(2)
        ras.push(1)
        ras.push(2)
        ras.push(3)
        assert ras.stats.overflows == 1
        assert ras.predict_pop() == 3
        assert ras.predict_pop() == 2
        assert ras.predict_pop() is None

    def test_check_counts_mispredicts(self):
        ras = ReturnAddressStack(4)
        ras.push(0x100)
        predicted = ras.predict_pop()
        assert not ras.check(predicted, 0x100)
        assert ras.check(0x300, 0x100)
        assert ras.stats.mispredicts == 1


class TestIndirectPredictor:
    def test_learns_stable_target(self):
        p = IndirectPredictor()
        wrong = 0
        for i in range(100):
            w = p.update(0x1000, 0x5000)
            if i >= 80:
                wrong += w
        assert wrong == 0

    def test_history_distinguishes_contexts(self):
        # A switch dispatch alternating between two targets in a fixed
        # global pattern becomes predictable through path history.
        p = IndirectPredictor(entries=1024, history_bits=4)
        wrong = 0
        for i in range(400):
            target = 0x5000 if (i % 2) else 0x6000
            w = p.update(0x1000, target)
            if i > 100:
                wrong += w
        assert wrong < 40
