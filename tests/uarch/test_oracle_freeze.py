"""Freeze guard for the timing oracle.

``repro.uarch.refmodel`` is the frozen reference the fast-path timing
model is equivalence-tested against, and ``golden_stats.json`` is its
committed output.  Neither may drift silently: a change to either file
must consciously update ``frozen_hashes.json`` in the same commit,
with the equivalence suite re-run.  This test turns any accidental
edit into a loud, named failure instead of a quietly re-baselined
oracle.
"""

import hashlib
import json
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
FROZEN = Path(__file__).with_name("frozen_hashes.json")


def _sha256(path: Path) -> str:
    return hashlib.sha256(path.read_bytes()).hexdigest()


def test_frozen_hashes_file_exists():
    assert FROZEN.exists(), (
        "tests/uarch/frozen_hashes.json is missing; regenerate it from "
        "the current oracle files and commit it")


def test_oracle_files_unchanged():
    frozen = json.loads(FROZEN.read_text())
    assert frozen, "frozen_hashes.json is empty"
    mismatches = []
    for rel, expected in sorted(frozen.items()):
        path = REPO_ROOT / rel
        assert path.exists(), f"frozen oracle file {rel} was deleted"
        actual = _sha256(path)
        if actual != expected:
            mismatches.append(f"{rel}: {actual} != frozen {expected}")
    assert not mismatches, (
        "timing-oracle files changed without updating the freeze "
        "record. If the change is intentional, re-run the fast-path "
        "equivalence suite and update tests/uarch/frozen_hashes.json "
        "in the same commit:\n  " + "\n  ".join(mismatches))


def test_freeze_covers_refmodel_and_golden_stats():
    frozen = json.loads(FROZEN.read_text())
    assert "src/repro/uarch/refmodel.py" in frozen
    assert "tests/uarch/golden_stats.json" in frozen
