"""CLI tests: python -m repro <subcommand>."""

import pytest

from repro.__main__ import main

SOURCE = """
_start:
    li t0, 10
    li t1, 0
loop:
    add t1, t1, t0
    addi t0, t0, -1
    bnez t0, loop
    li a0, 0
    li a7, 93
    ecall
"""


@pytest.fixture
def program_file(tmp_path):
    path = tmp_path / "prog.s"
    path.write_text(SOURCE)
    return str(path)


class TestCli:
    def test_run_emulate(self, program_file, capsys):
        assert main(["run", program_file]) == 0
        out = capsys.readouterr().out
        assert "exit 0" in out

    def test_run_timed(self, program_file, capsys):
        assert main(["run", program_file, "--core", "xt910",
                     "--stats"]) == 0
        out = capsys.readouterr().out
        assert "IPC" in out and "cycles" in out

    def test_disasm(self, program_file, capsys):
        assert main(["disasm", program_file]) == 0
        out = capsys.readouterr().out
        assert "addi" in out and "ecall" in out

    def test_profile(self, program_file, capsys):
        assert main(["profile", program_file, "--top", "5"]) == 0
        out = capsys.readouterr().out
        assert "hottest" in out

    def test_compare(self, program_file, capsys):
        assert main(["compare", program_file, "--cores", "xt910",
                     "u54"]) == 0
        out = capsys.readouterr().out
        assert "xt910" in out and "u54" in out

    def test_no_compress_flag(self, program_file, capsys):
        assert main(["run", program_file, "--no-compress"]) == 0

    def test_bad_core_rejected(self, program_file):
        with pytest.raises(SystemExit):
            main(["run", program_file, "--core", "pentium"])
