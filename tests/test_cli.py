"""CLI tests: python -m repro <subcommand>."""

import pytest

from repro.__main__ import main

SOURCE = """
_start:
    li t0, 10
    li t1, 0
loop:
    add t1, t1, t0
    addi t0, t0, -1
    bnez t0, loop
    li a0, 0
    li a7, 93
    ecall
"""


@pytest.fixture
def program_file(tmp_path):
    path = tmp_path / "prog.s"
    path.write_text(SOURCE)
    return str(path)


class TestCli:
    def test_run_emulate(self, program_file, capsys):
        assert main(["run", program_file]) == 0
        out = capsys.readouterr().out
        assert "exit 0" in out

    def test_run_timed(self, program_file, capsys):
        assert main(["run", program_file, "--core", "xt910",
                     "--stats"]) == 0
        out = capsys.readouterr().out
        assert "IPC" in out and "cycles" in out

    def test_disasm(self, program_file, capsys):
        assert main(["disasm", program_file]) == 0
        out = capsys.readouterr().out
        assert "addi" in out and "ecall" in out

    def test_profile(self, program_file, capsys):
        assert main(["profile", program_file, "--top", "5"]) == 0
        out = capsys.readouterr().out
        assert "hottest" in out

    def test_compare(self, program_file, capsys):
        assert main(["compare", program_file, "--cores", "xt910",
                     "u54"]) == 0
        out = capsys.readouterr().out
        assert "xt910" in out and "u54" in out

    def test_no_compress_flag(self, program_file, capsys):
        assert main(["run", program_file, "--no-compress"]) == 0

    def test_bad_core_rejected(self, program_file):
        with pytest.raises(SystemExit):
            main(["run", program_file, "--core", "pentium"])


HANG_SOURCE = """
_start:
    li s0, 42
spin:
    j spin
"""


@pytest.fixture
def hang_file(tmp_path):
    path = tmp_path / "hang.s"
    path.write_text(HANG_SOURCE)
    return str(path)


class TestRasCli:
    def test_max_insts_watchdog(self, hang_file, capsys):
        assert main(["run", hang_file, "--max-insts", "200"]) == 2
        out = capsys.readouterr().out
        assert "watchdog" in out
        assert "pc=" in out

    def test_max_insts_does_not_trip_on_clean_exit(self, program_file,
                                                   capsys):
        assert main(["run", program_file, "--max-insts", "100000"]) == 0
        assert "exit 0" in capsys.readouterr().out

    def test_lockstep_clean(self, program_file, capsys):
        assert main(["run", program_file, "--lockstep"]) == 0
        out = capsys.readouterr().out
        assert "no divergence" in out

    def test_lockstep_with_max_insts(self, hang_file, capsys):
        # Both primary and shadow hit the watchdog together; the
        # checker reports the crash as a divergence-free abort or the
        # CLI surfaces the watchdog -- either way no traceback leaks.
        rc = main(["run", hang_file, "--lockstep", "--max-insts", "100"])
        assert rc in (1, 2)


BROKEN_SOURCE = """
_start:
    li a0, 1
    jal ra, broken
    li a7, 93
    ecall
broken:
    addi sp, sp, -16
    add a1, a2, s3
    jalr x0, 0(ra)
"""


@pytest.fixture
def broken_file(tmp_path):
    path = tmp_path / "broken.s"
    path.write_text(BROKEN_SOURCE)
    return str(path)


class TestLintCli:
    def test_lint_clean_program(self, program_file, capsys):
        assert main(["lint", program_file]) == 0
        out = capsys.readouterr().out
        assert "clean" in out

    def test_lint_reports_findings(self, broken_file, capsys):
        assert main(["lint", broken_file]) == 1
        captured = capsys.readouterr()
        assert "uninit-read" in captured.out
        assert "stack-imbalance" in captured.out
        # single-file lint ignores the committed workload baseline
        assert "finding(s) reported" in captured.err
        assert "lint_baseline.json" not in captured.err

    def test_lint_json_output(self, broken_file, capsys):
        import json

        assert main(["lint", broken_file, "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["programs"][0]["findings"]
        assert payload["new"]

    def test_lint_baseline_cycle(self, broken_file, tmp_path, capsys):
        baseline = str(tmp_path / "baseline.json")
        assert main(["lint", broken_file, "--update-baseline",
                     "--baseline", baseline]) == 0
        capsys.readouterr()
        # with the accepted baseline the same findings now pass
        assert main(["lint", broken_file, "--baseline", baseline]) == 0

    def test_lint_requires_input(self, capsys):
        assert main(["lint"]) == 2
        assert "needs a program" in capsys.readouterr().err


class TestSanitizeCli:
    def test_sanitize_clean(self, program_file, capsys):
        assert main(["run", program_file, "--sanitize"]) == 0
        out = capsys.readouterr().out
        assert "sanitized" in out and "0 violations" in out

    def test_sanitize_catches_violation(self, tmp_path, capsys):
        path = tmp_path / "bad.s"
        path.write_text("""
_start:
    add t1, t0, t2
    li a0, 0
    li a7, 93
    ecall
""")
        assert main(["run", str(path), "--sanitize"]) == 1
        out = capsys.readouterr().out
        assert "uninit-read" in out

    def test_sanitize_excludes_core_modes(self, program_file, capsys):
        assert main(["run", program_file, "--sanitize", "--core",
                     "xt910"]) == 2
        assert "--sanitize" in capsys.readouterr().err


class TestUarchCli:
    """--uarch/--extend: config documents on the run/compare path."""

    @pytest.fixture
    def xt910_doc(self, tmp_path):
        path = tmp_path / "core.json"
        from repro.uarch import uconfig
        from repro.uarch.presets import get_preset
        uconfig.dump_config(get_preset("xt910"), str(path))
        return str(path)

    def test_uarch_file_matches_preset(self, program_file, xt910_doc,
                                       capsys):
        assert main(["run", program_file, "--core", "xt910",
                     "--stats"]) == 0
        preset_out = capsys.readouterr().out
        assert main(["run", program_file, "--uarch", xt910_doc,
                     "--stats"]) == 0
        file_out = capsys.readouterr().out
        assert file_out == preset_out       # bit-identical stats block

    def test_core_accepts_a_document_path(self, program_file,
                                          xt910_doc, capsys):
        # --core is not limited to preset names any more
        assert main(["run", program_file, "--core", xt910_doc]) == 0
        assert "cycles" in capsys.readouterr().out

    def test_extend_overlay_changes_the_run(self, program_file,
                                            tmp_path, capsys):
        import json as _json
        overlay = tmp_path / "slow.json"
        overlay.write_text(_json.dumps(
            {"mem": {"dram": {"latency": 400}}}))
        assert main(["run", program_file, "--core", "xt910",
                     "--stats"]) == 0
        base = capsys.readouterr().out
        assert main(["run", program_file, "--core", "xt910",
                     "--extend", str(overlay), "--stats"]) == 0
        slowed = capsys.readouterr().out
        assert slowed != base

    def test_core_and_uarch_are_exclusive(self, program_file,
                                          xt910_doc, capsys):
        assert main(["run", program_file, "--core", "xt910",
                     "--uarch", xt910_doc]) == 2
        assert "exclusive" in capsys.readouterr().err

    def test_extend_needs_a_base(self, program_file, tmp_path, capsys):
        overlay = tmp_path / "o.json"
        overlay.write_text("{}")
        assert main(["run", program_file,
                     "--extend", str(overlay)]) == 2
        assert "--extend" in capsys.readouterr().err

    def test_bad_core_error_lists_presets(self, program_file, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", program_file, "--core", "pentium"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "xt910" in err               # names the valid presets

    def test_invalid_document_is_a_clean_error(self, program_file,
                                               tmp_path, capsys):
        import json as _json
        bad = tmp_path / "bad.json"
        bad.write_text(_json.dumps({"rob_entries": -1}))
        with pytest.raises(SystemExit):
            main(["run", program_file, "--uarch", str(bad)])
        err = capsys.readouterr().err
        assert "rob_entries" in err and "Traceback" not in err


class TestExploreCli:
    def test_spec_file_sweep(self, tmp_path, capsys):
        import json as _json
        spec = tmp_path / "sweep.json"
        spec.write_text(_json.dumps({
            "name": "cli-sweep", "base": "xt910",
            "workloads": ["blockchain-base"], "tier": 2,
            "axes": [{"path": "mem.dram.latency",
                      "values": [100, 200]}]}))
        assert main(["explore", str(spec)]) == 0
        out = capsys.readouterr().out
        assert "2 point(s)" in out and "2 simulated" in out
        # second invocation replays entirely from the store
        assert main(["explore", str(spec)]) == 0
        assert "2 cached, 0 simulated" in capsys.readouterr().out

    def test_spec_or_depth_required(self, capsys):
        assert main(["explore"]) == 2
        assert "sweep spec" in capsys.readouterr().err

    def test_bad_spec_is_a_clean_error(self, tmp_path, capsys):
        spec = tmp_path / "bad.json"
        spec.write_text('{"axes": [{"path": "frontend.depht", '
                        '"values": [1]}]}')
        assert main(["explore", str(spec)]) == 2
        err = capsys.readouterr().err
        assert "frontend.depht" in err and "Traceback" not in err
