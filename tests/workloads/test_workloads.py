"""Every workload's checksum must match its Python reference model."""

import pytest

from repro.workloads import all_workloads
from repro.workloads.blockchain import blockchain_kernel
from repro.workloads.stream import stream_kernel
from repro.workloads.vector import scalar_mac16, vec_mac16

ALL = all_workloads()


@pytest.mark.parametrize("workload", ALL, ids=[w.name for w in ALL])
def test_checksum_matches_reference(workload):
    workload.verify()


def test_suites_are_complete():
    names = {w.name for w in ALL}
    assert sum(n.startswith("coremark-") for n in names) == 4
    assert sum(n.startswith("eembc-") for n in names) == 9
    assert sum(n.startswith("nbench-") for n in names) == 7
    assert sum(n.startswith("stream-") for n in names) == 4


def test_blockchain_variants_agree():
    """Base-ISA and XT-extension builds compute the same hash."""
    base = blockchain_kernel(xt=False, blocks=3)
    xt = blockchain_kernel(xt=True, blocks=3)
    assert base.run_functional()[1] == xt.run_functional()[1]


def test_xt_variant_uses_fewer_instructions():
    """The srriw rotates shrink the dynamic instruction count."""
    from repro.sim import Emulator

    counts = {}
    for xt in (False, True):
        emu = Emulator(blockchain_kernel(xt=xt, blocks=3).program())
        emu.run()
        counts[xt] = emu.state.instret
    assert counts[True] < counts[False] * 0.8


def test_vector_mac_beats_scalar_instruction_count():
    """16 16-bit MACs per vector instruction vs 1 per scalar mulah."""
    from repro.sim import Emulator

    vec = Emulator(vec_mac16(n=256, unroll_passes=2).program())
    vec.run()
    scalar = Emulator(scalar_mac16(n=256, unroll_passes=2).program())
    scalar.run()
    assert vec.state.instret < scalar.state.instret / 4


def test_stream_kernel_validation():
    with pytest.raises(ValueError):
        stream_kernel("bogus")


def test_strlen_xt_beats_base():
    """Section VIII.B: tstnbz/ff1 accelerate string scanning."""
    from repro.harness.runner import run_on_core
    from repro.workloads.stringops import strlen_base, strlen_xt

    base = run_on_core(strlen_base().program(), "xt910")
    xt = run_on_core(strlen_xt().program(), "xt910")
    assert xt.cycles < base.cycles / 2
