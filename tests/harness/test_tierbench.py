"""The tier bench payload, its regression gate, and the baseline."""

import json
import pathlib

from repro.harness import tierbench

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]


def _payload(tier3_mips=4.0, speedup=2.5, warm_compiled=0):
    return {
        "schema": tierbench.SCHEMA,
        "summary": {
            "coremark_tier3_mips": tier3_mips,
            "coremark_tier2_mips": tier3_mips / speedup,
            "coremark_speedup_vs_tier2": speedup,
            "warm_blocks_compiled": warm_compiled,
        },
    }


class TestRegressionGate:
    def test_no_regression(self):
        assert tierbench.check_regression(_payload(), _payload()) == []

    def test_within_tolerance(self):
        assert tierbench.check_regression(
            _payload(3.0), _payload(4.0), tolerance=0.30) == []

    def test_mips_regression_fails(self):
        failures = tierbench.check_regression(
            _payload(2.0), _payload(4.0), tolerance=0.30)
        assert any("coremark_tier3_mips" in f for f in failures)

    def test_speedup_regression_fails(self):
        failures = tierbench.check_regression(
            _payload(speedup=1.2), _payload(speedup=2.5),
            tolerance=0.30)
        assert any("coremark_speedup_vs_tier2" in f for f in failures)

    def test_warm_recompilation_is_absolute(self):
        # Blocks recompiled against a warm cache are a bug at any
        # tolerance — the warm-start gate has no noise band.
        failures = tierbench.check_regression(
            _payload(warm_compiled=3), _payload(), tolerance=0.99)
        assert any("warm-start" in f for f in failures)

    def test_empty_baseline_passes(self):
        assert tierbench.check_regression(_payload(), {"summary": {}}) == []


class TestBenchRun:
    def test_bench_workload_shape(self, tmp_path):
        workload = tierbench._workloads(quick=True)[0]
        result = tierbench.bench_workload(workload, repeat=1,
                                          cache_dir=str(tmp_path))
        assert result["insts"] > 0
        assert result["tier2_mips"] > 0
        assert result["tier3_mips"] > 0
        assert result["blocks_compiled_cold"] > 0
        # The warm runs hit the disk cache the cold run persisted.
        assert result["blocks_compiled_warm"] == 0
        assert result["disk_hits_warm"] >= result["blocks_compiled_cold"]


class TestCommittedBaseline:
    def test_checked_in_payload_is_valid(self):
        with open(REPO_ROOT / "BENCH_tier3.json") as handle:
            payload = json.load(handle)
        assert payload["schema"] == tierbench.SCHEMA
        summary = payload["summary"]
        # The acceptance bar this PR ships under: >= 2x over tier-2
        # on CoreMark, and a genuinely warm second start.
        assert summary["coremark_speedup_vs_tier2"] >= 2.0
        assert summary["coremark_tier3_mips"] > summary[
            "coremark_tier2_mips"]
        assert summary["warm_blocks_compiled"] == 0
        for result in payload["workloads"].values():
            assert result["insts"] > 0
            assert result["blocks_compiled_warm"] == 0
