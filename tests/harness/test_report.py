"""Report container and rendering tests."""

import pytest

from repro.harness.report import ExperimentResult, geomean


class TestExperimentResult:
    def test_add_and_render(self):
        r = ExperimentResult(experiment="figX", title="demo")
        r.add("metric-a", 1.0, 1.1, "x", note="close")
        r.add("metric-b", None, 42, "cycles")
        text = r.render()
        assert "figX" in text and "demo" in text
        assert "metric-a" in text and "1.100" in text
        assert "close" in text
        assert "-" in text  # the None paper value

    def test_notes_rendered(self):
        r = ExperimentResult(experiment="e", title="t")
        r.add("m", 1, 1)
        r.notes.append("caveat emptor")
        assert "caveat emptor" in r.render()

    def test_string_values(self):
        r = ExperimentResult(experiment="e", title="t")
        r.add("range", "6-25", 16, "cycles")
        assert "6-25" in r.render()

    def test_empty_renders(self):
        r = ExperimentResult(experiment="e", title="t")
        assert "e" in r.render()


class TestGeomean:
    def test_basic(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)

    def test_single(self):
        assert geomean([3.0]) == 3.0

    def test_empty(self):
        assert geomean([]) == 0.0

    def test_identity(self):
        assert geomean([1.0] * 10) == pytest.approx(1.0)
