"""The bench payload, the regression gate, and the CLI subcommand."""

import json
import pathlib

from repro.harness import perfbench

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]


def _payload(fast_mips=2.0, speedup=3.5):
    return {
        "schema": perfbench.SCHEMA,
        "summary": {
            "coremark_fast_mips": fast_mips,
            "coremark_precise_mips": fast_mips / speedup,
            "coremark_speedup": speedup,
        },
    }


class TestRegressionGate:
    def test_no_regression(self):
        assert perfbench.check_regression(_payload(2.0), _payload(2.0)) == []

    def test_faster_is_fine(self):
        assert perfbench.check_regression(_payload(9.0), _payload(2.0)) == []

    def test_within_tolerance(self):
        assert perfbench.check_regression(
            _payload(1.5), _payload(2.0), tolerance=0.30) == []

    def test_mips_regression_fails(self):
        failures = perfbench.check_regression(
            _payload(1.0), _payload(2.0), tolerance=0.30)
        assert any("coremark_fast_mips" in f for f in failures)

    def test_speedup_regression_fails(self):
        failures = perfbench.check_regression(
            _payload(2.0, speedup=1.5), _payload(2.0, speedup=3.5),
            tolerance=0.30)
        assert any("coremark_speedup" in f for f in failures)

    def test_empty_baseline_passes(self):
        assert perfbench.check_regression(_payload(), {"summary": {}}) == []


class TestBenchRun:
    def test_bench_workload_shape(self):
        result = perfbench.bench_workload("coremark-list", repeat=1)
        assert result["insts"] > 0
        assert result["precise_mips"] > 0
        assert result["fast_mips"] > result["precise_mips"]
        assert result["speedup"] > 1.0
        assert result["harness_s"] > 0

    def test_render_and_save(self, tmp_path):
        payload = {
            "schema": perfbench.SCHEMA,
            "workloads": {
                "coremark-list": {
                    "insts": 100, "precise_s": 1.0, "fast_s": 0.25,
                    "precise_mips": 0.0001, "fast_mips": 0.0004,
                    "speedup": 4.0, "harness_s": 0.5}},
            "summary": {"coremark_precise_mips": 0.0001,
                        "coremark_fast_mips": 0.0004,
                        "coremark_speedup": 4.0,
                        "geomean_speedup": 4.0,
                        "harness_wall_s": 0.5},
        }
        text = perfbench.render(payload)
        assert "coremark-list" in text
        assert "4.00x" in text
        path = tmp_path / "bench.json"
        perfbench.save(payload, str(path))
        assert perfbench.load(str(path)) == payload


class TestCommittedBaseline:
    def test_checked_in_payload_is_valid(self):
        with open(REPO_ROOT / "BENCH_emulator.json") as handle:
            payload = json.load(handle)
        assert payload["schema"] == perfbench.SCHEMA
        summary = payload["summary"]
        # The acceptance bar this PR ships under: >= 3x on CoreMark.
        assert summary["coremark_speedup"] >= 3.0
        assert summary["coremark_fast_mips"] > summary[
            "coremark_precise_mips"]
        for result in payload["workloads"].values():
            assert result["insts"] > 0
            assert result["speedup"] > 1.0
