"""Runner-glue tests: functional + timing integration."""

import pytest

from repro.asm import assemble
from repro.harness.runner import compare_cores, run_on_core
from repro.uarch.presets import get_preset

PROGRAM = assemble("""
_start:
    li t0, 50
    li t1, 0
loop:
    add t1, t1, t0
    addi t0, t0, -1
    bnez t0, loop
    li a0, 0
    li a7, 93
    ecall
""", compress=True)

FAILING = assemble("""
_start:
    li a0, 7
    li a7, 93
    ecall
""")


class TestRunOnCore:
    def test_by_name(self):
        result = run_on_core(PROGRAM, "xt910")
        assert result.core == "xt910"
        assert result.cycles > 0
        assert result.exit_code == 0

    def test_by_config(self):
        config = get_preset("u74")
        result = run_on_core(PROGRAM, config)
        assert result.core == "u74"

    def test_unknown_preset(self):
        with pytest.raises(KeyError, match="unknown core preset"):
            run_on_core(PROGRAM, "pentium4")

    def test_nonzero_exit_raises(self):
        with pytest.raises(RuntimeError, match="exited with 7"):
            run_on_core(FAILING, "xt910")

    def test_instruction_count_matches_emulator(self):
        from repro.sim import run_program

        emulator = run_program(PROGRAM)
        result = run_on_core(PROGRAM, "xt910")
        assert result.stats.instructions == emulator.state.instret


class TestCompareCores:
    def test_same_binary_everywhere(self):
        results = compare_cores(PROGRAM, ["xt910", "u54"])
        assert set(results) == {"xt910", "u54"}
        assert results["xt910"].stats.instructions \
            == results["u54"].stats.instructions
        assert results["xt910"].cycles < results["u54"].cycles


class TestExperimentRegistry:
    def test_all_experiments_registered(self):
        from repro.harness import EXPERIMENTS

        expected = {"table1", "table2", "fig17", "fig18", "fig19",
                    "fig20", "fig21", "spec", "asid", "vecmac",
                    "blockchain", "ras", "lint", "service", "explore"}
        assert set(EXPERIMENTS) == expected

    def test_fast_experiments_run(self):
        from repro.harness import run_table1, run_table2, run_vecmac

        for fn in (run_table1, run_table2, run_vecmac):
            result = fn(quick=True)
            assert result.rows
            assert result.render()
