"""The shared cell executor: serial/parallel parity, ordering, and
collect-and-report failure aggregation."""

import os

import pytest

from repro.harness.parallel import CellFailure, default_jobs, run_cells


def _square_minus(x, y):
    return x * x - y


def _boom(x):
    raise ValueError(f"cell {x}")


def _boom_odd(x):
    if x % 2:
        raise ValueError(f"cell {x}")
    return x * 10


def _die(x):
    os._exit(70)


def _hang(x):
    import time
    while True:
        time.sleep(0.05)


class TestRunCells:
    def test_serial_default(self):
        assert run_cells(_square_minus, [(3, 1), (4, 2)]) == [8, 14]

    def test_serial_explicit(self):
        assert run_cells(_square_minus, [(3, 1)], jobs=1) == [8]

    def test_parallel_preserves_order(self):
        cells = [(i, 0) for i in range(10)]
        assert run_cells(_square_minus, cells, jobs=3) \
            == [i * i for i in range(10)]

    def test_empty(self):
        assert run_cells(_square_minus, [], jobs=4) == []

    def test_serial_failure_names_cell(self):
        with pytest.raises(CellFailure, match="cell 7"):
            run_cells(_boom, [(7,)])

    def test_serial_failure_chains_cause(self):
        with pytest.raises(CellFailure) as info:
            run_cells(_boom, [(7,)])
        assert isinstance(info.value.__cause__, ValueError)

    def test_parallel_failure_names_cell(self):
        with pytest.raises(CellFailure, match="_boom"):
            run_cells(_boom, [(1,), (2,)], jobs=2)

    def test_siblings_complete_before_report(self):
        # Failing cells must not abort the healthy ones: the failure
        # report arrives only after every cell ran, and names exactly
        # the odd (raising) cells with their arguments.
        with pytest.raises(CellFailure) as info:
            run_cells(_boom_odd, [(i,) for i in range(6)], jobs=3)
        failure = info.value
        assert failure.total == 6
        assert [f.index for f in failure.failures] == [1, 3, 5]
        assert all(f.fn == "_boom_odd" for f in failure.failures)
        assert "cell 3" in str(failure)

    def test_worker_crash_is_attributed(self):
        with pytest.raises(CellFailure) as info:
            run_cells(_die, [(0,), (1,)], jobs=2, timeout=30.0)
        assert len(info.value.failures) == 2
        failure = info.value.failures[0]
        assert failure.status == "crash"
        assert "exit code 70" in failure.error["message"]

    def test_hung_cell_is_reaped(self):
        with pytest.raises(CellFailure) as info:
            run_cells(_hang, [(0,), (1,)], jobs=2, timeout=1.0)
        assert {f.status for f in info.value.failures} == {"timeout"}

    def test_default_jobs_positive(self):
        assert default_jobs() >= 1
