"""The shared cell executor: serial/parallel parity and ordering."""

import pytest

from repro.harness.parallel import default_jobs, run_cells


def _square_minus(x, y):
    return x * x - y


def _boom(x):
    raise ValueError(f"cell {x}")


class TestRunCells:
    def test_serial_default(self):
        assert run_cells(_square_minus, [(3, 1), (4, 2)]) == [8, 14]

    def test_serial_explicit(self):
        assert run_cells(_square_minus, [(3, 1)], jobs=1) == [8]

    def test_parallel_preserves_order(self):
        cells = [(i, 0) for i in range(10)]
        assert run_cells(_square_minus, cells, jobs=3) \
            == [i * i for i in range(10)]

    def test_empty(self):
        assert run_cells(_square_minus, [], jobs=4) == []

    def test_serial_exception_propagates(self):
        with pytest.raises(ValueError, match="cell 7"):
            run_cells(_boom, [(7,)])

    def test_parallel_exception_propagates(self):
        with pytest.raises(ValueError, match="cell"):
            run_cells(_boom, [(1,), (2,)], jobs=2)

    def test_default_jobs_positive(self):
        assert default_jobs() >= 1
