"""The design-space exploration harness (``repro.harness.explore``).

Covers sweep-spec parsing (both axis forms and their negatives), point
expansion with validation at expansion time, the content-addressed
result store (second-pass-all-hits, corrupt records as misses, and key
separation across program/config/tier/budget), the depth bench's
trade-off shape against the committed BENCH_explore.json, and a
>=100-point sweep actually fanned through the worker pool.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.harness import explore
from repro.uarch import uconfig

REPO_ROOT = Path(__file__).resolve().parents[2]


# -- spec parsing ------------------------------------------------------------


def test_axis_scalar_form():
    axis = explore.SweepAxis.from_dict(
        {"path": "frontend.depth", "values": [3, 5, 7]})
    assert axis.label == "frontend.depth"
    assert axis.values == [3, 5, 7]
    assert axis.points == [{"frontend.depth": 3}, {"frontend.depth": 5},
                           {"frontend.depth": 7}]


def test_axis_range_form():
    axis = explore.SweepAxis.from_dict(
        {"path": "mem.dram.latency",
         "range": {"start": 100, "stop": 300, "step": 100}})
    assert axis.values == [100, 200, 300]


def test_axis_linked_points_form():
    axis = explore.SweepAxis.from_dict({
        "label": "depth",
        "points": [{"frontend.depth": 3, "frontend.mispredict_extra": 0},
                   {"frontend.depth": 9,
                    "frontend.mispredict_extra": 12}]})
    assert axis.label == "depth"
    assert len(axis.points) == 2
    # multi-knob axes expose the whole point dict as the value
    assert axis.values == axis.points


@pytest.mark.parametrize("payload", [
    {"values": [1]},                                   # missing path
    {"path": "x"},                                     # neither form
    {"path": "x", "values": [1], "range": {}},         # both forms
    {"path": "x", "values": []},                       # empty values
    {"path": "x", "range": {"start": 5, "stop": 1}},   # inverted range
    {"points": []},                                    # empty points
    {"points": [{}]},                                  # empty point
    {"points": [{"a": 1}], "path": "x"},               # mixed forms
    {"path": "x", "values": [1], "bogus": True},       # unknown key
])
def test_axis_negatives(payload):
    with pytest.raises(explore.ExploreError):
        explore.SweepAxis.from_dict(payload)


def test_sweep_spec_parsing_and_negatives():
    spec = explore.SweepSpec.from_dict({
        "name": "s", "base": "u74", "workloads": ["coremark-list"],
        "axes": [{"path": "rob_entries", "values": [64, 96]}],
        "tier": 2})
    assert spec.base == "u74" and spec.axes[0].values == [64, 96]
    with pytest.raises(explore.ExploreError):
        explore.SweepSpec.from_dict({"tier": 5})
    with pytest.raises(explore.ExploreError):
        explore.SweepSpec.from_dict({"workloads": []})
    with pytest.raises(explore.ExploreError):
        explore.SweepSpec.from_dict({"bogus": 1})


def test_load_sweep_file(tmp_path):
    path = tmp_path / "sweep.json"
    path.write_text(json.dumps({
        "name": "file-sweep",
        "axes": [{"path": "iq_entries", "values": [8, 16]}]}))
    spec = explore.load_sweep(str(path))
    assert spec.name == "file-sweep"
    assert spec.workloads == ["coremark-list"]


# -- expansion ---------------------------------------------------------------


def test_expand_cartesian_product_with_digests():
    spec = explore.SweepSpec(axes=[
        explore.SweepAxis.single("frontend.depth", [5, 7]),
        explore.SweepAxis.single("mem.dram.latency", [100, 200, 300]),
    ])
    points = explore.expand(spec)
    assert len(points) == 6
    assert points[0].overrides == {"frontend.depth": 5,
                                   "mem.dram.latency": 100}
    assert points[-1].overrides == {"frontend.depth": 7,
                                    "mem.dram.latency": 300}
    assert len({p.digest for p in points}) == 6   # all distinct configs
    assert points[3].label == "p0003"


def test_expand_validates_each_point():
    spec = explore.SweepSpec(axes=[
        explore.SweepAxis.single("decode_width", [2, 99])])
    with pytest.raises(explore.ExploreError) as excinfo:
        explore.expand(spec)
    assert "out of range" in str(excinfo.value)


def test_expand_point_ceiling():
    spec = explore.SweepSpec(axes=[
        explore.SweepAxis.single("rob_entries",
                                 range(1, explore.MAX_POINTS + 2))])
    with pytest.raises(explore.ExploreError) as excinfo:
        explore.expand(spec)
    assert "ceiling" in str(excinfo.value)


def test_no_axes_is_one_point():
    points = explore.expand(explore.SweepSpec())
    assert len(points) == 1 and points[0].overrides == {}


# -- the store ---------------------------------------------------------------


def test_store_key_separates_every_component():
    keys = {
        explore.store_key("prog", "conf", 2, None),
        explore.store_key("prog2", "conf", 2, None),     # program
        explore.store_key("prog", "conf2", 2, None),     # config
        explore.store_key("prog", "conf", 3, None),      # tier
        explore.store_key("prog", "conf", 2, 1000),      # budget
    }
    assert len(keys) == 5


def test_store_key_no_collision_across_field_boundaries():
    """The key material is delimited: shifting characters between
    adjacent fields must not produce the same address."""
    assert explore.store_key("ab", "cd", 2, None) != \
        explore.store_key("a", "bcd", 2, None)
    assert explore.store_key("p", "c1", 2, None) != \
        explore.store_key("p", "c", 12, None)


def test_store_round_trip_and_corrupt_record_is_miss(tmp_path):
    store = explore.ExploreStore(str(tmp_path / "store"))
    key = explore.store_key("p", "c", 2, None)
    assert store.get(key) is None
    store.put(key, {"cycles": 123})
    assert store.get(key) == {"cycles": 123}
    assert len(store) == 1
    # corrupt the record on disk: treated as a miss, not an error
    Path(store._path(key)).write_text("{truncated")
    assert store.get(key) is None
    assert store.hits == 1 and store.misses == 2


def test_default_store_dir_honours_env(monkeypatch):
    monkeypatch.setenv("REPRO_EXPLORE_CACHE_DIR", "/tmp/somewhere")
    assert explore.default_store_dir() == "/tmp/somewhere"


# -- running sweeps ----------------------------------------------------------


def _tiny_spec(values=(100, 200)):
    return explore.SweepSpec(
        base="xt910", workloads=["blockchain-base"],
        axes=[explore.SweepAxis.single("mem.dram.latency",
                                       list(values))],
        tier=2, name="tiny")


def test_second_pass_is_pure_cache(tmp_path):
    store = explore.ExploreStore(str(tmp_path / "store"))
    first = explore.run_sweep(_tiny_spec(), store=store)
    assert first.simulated == 2 and first.cache_hits == 0
    second = explore.run_sweep(_tiny_spec(), store=store)
    assert second.simulated == 0 and second.cache_hits == 2
    # identical records either way, and flagged as cached
    assert [c.record["cycles"] for c in second.results] == \
        [c.record["cycles"] for c in first.results]
    assert all(c.cached for c in second.results)


def test_growing_a_sweep_only_simulates_the_new_column(tmp_path):
    store = explore.ExploreStore(str(tmp_path / "store"))
    explore.run_sweep(_tiny_spec((100, 200)), store=store)
    grown = explore.run_sweep(_tiny_spec((100, 200, 300)), store=store)
    assert grown.cache_hits == 2 and grown.simulated == 1


def test_config_actually_changes_the_simulation(tmp_path):
    store = explore.ExploreStore(str(tmp_path / "store"))
    report = explore.run_sweep(_tiny_spec((100, 400)), store=store)
    cycles = [cell.record["cycles"] for cell in report.results]
    assert cycles[0] < cycles[1]       # 4x DRAM latency costs cycles


def test_hundred_point_sweep_through_the_pool(tmp_path):
    """The acceptance sweep: >=100 points fanned over worker
    processes, then replayed entirely from the store."""
    spec = explore.smoke_spec()
    store = explore.ExploreStore(str(tmp_path / "store"))
    report = explore.run_sweep(spec, jobs=2, store=store)
    assert report.points >= 100
    assert report.simulated == report.cells
    again = explore.run_sweep(spec, jobs=2, store=store)
    assert again.simulated == 0
    assert again.cache_hits == again.cells


def test_report_json_is_metrics_schema(tmp_path):
    from repro.obs import MetricsRegistry

    store = explore.ExploreStore(str(tmp_path / "store"))
    report = explore.run_sweep(_tiny_spec(), store=store)
    path = tmp_path / "report.json"
    report.save(str(path))
    payload = json.loads(path.read_text())
    # every metrics key passes MetricsRegistry validation on reload
    registry = MetricsRegistry.from_dict(payload["metrics"])
    assert registry["explore.sweep"] == "tiny"
    assert registry["explore.p0000.blockchain-base.cycles"] == \
        report.results[0].record["cycles"]
    assert registry["explore.p0001.axis.mem.dram.latency"] == 200


# -- the depth bench ---------------------------------------------------------


def test_depth_points_scale_redirect_penalties():
    shallow = explore.depth_point(3)
    deep = explore.depth_point(13)
    assert shallow["frontend.mispredict_extra"] == 0
    assert deep["frontend.mispredict_extra"] > \
        shallow["frontend.mispredict_extra"]
    assert deep["frontend.taken_bubble_miss"] >= \
        shallow["frontend.taken_bubble_miss"]


def test_frequency_scale_shape():
    assert explore.frequency_scale(7) == pytest.approx(1.0)
    # deeper clocks faster, but sublinearly
    assert 1.0 < explore.frequency_scale(13) < 13 / 7
    assert explore.frequency_scale(3) < 1.0


def test_depth_bench_quick_matches_committed_baseline(tmp_path):
    baseline = explore.load(str(REPO_ROOT / "BENCH_explore.json"))
    payload = explore.run_bench(
        quick=True, store=explore.ExploreStore(str(tmp_path / "s")))
    assert explore.check_regression(payload, baseline) == []
    cycles = [row["cycles_total"] for row in payload["rows"]]
    assert cycles == sorted(cycles)       # deeper is never cheaper
    # the committed full-suite optimum is interior, the trade-off shape
    assert min(explore.DEPTHS) < baseline["best_depth"] \
        < max(explore.DEPTHS)


def test_check_regression_flags_cycle_drift():
    baseline = explore.load(str(REPO_ROOT / "BENCH_explore.json"))
    payload = json.loads(json.dumps(baseline))
    row = payload["rows"][0]
    name = next(iter(row["workloads"]))
    row["workloads"][name]["cycles"] += 1
    failures = explore.check_regression(payload, baseline)
    assert any("timing-model change" in failure for failure in failures)


# -- uconfig integration edge ------------------------------------------------


def test_sweep_base_may_be_inline_document():
    spec = explore.SweepSpec(
        base={"name": "inline", "rob_entries": 64},
        axes=[explore.SweepAxis.single("iq_entries", [8, 12])])
    points = explore.expand(spec)
    assert len(points) == 2
    config = uconfig.config_from_doc(points[0].doc)
    assert config.rob_entries == 64 and config.iq_entries == 8
