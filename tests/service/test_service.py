"""JobService end-to-end: retries, quarantine, cache, degradation.

Pooled tests keep worker counts small (CI machines may expose a single
CPU); chaos crash/hang plans only ever run under process isolation —
inline they would take the test process with them.
"""

import json

from repro.asm import assemble
from repro.harness.runner import run_on_core
from repro.obs import collect_service
from repro.service import JobService, JobSpec, JobState, RetryPolicy
from repro.service.chaos import clean_source, wild_jump_source

FAST_RETRY = RetryPolicy(max_attempts=3, backoff_base_s=0.01,
                         backoff_cap_s=0.05, jitter=0.2)


def _service(**kwargs) -> JobService:
    kwargs.setdefault("retry", FAST_RETRY)
    return JobService(**kwargs)


class TestHealthyJobs:
    def test_functional_inline(self):
        result = _service(isolation=False).submit(
            JobSpec(source=clean_source(0), core=None, name="fn"))
        assert result.state is JobState.COMPLETED
        assert result.exit_code == 0
        assert result.metrics["instret"] > 0

    def test_timed_inline(self):
        result = _service(isolation=False).submit(
            JobSpec(source=clean_source(1), core="xt910", name="timed"))
        assert result.state is JobState.COMPLETED
        assert result.metrics["cycles"] > 0
        assert 0.0 < result.metrics["ipc"] < 8.0

    def test_batch_order_and_job_ids(self):
        service = _service(isolation=False)
        specs = [JobSpec(source=clean_source(i), core=None, name=f"j{i}")
                 for i in range(4)]
        results = service.run(specs)
        assert [r.name for r in results] == [f"j{i}" for i in range(4)]
        assert sorted(r.job_id for r in results) == [1, 2, 3, 4]


class TestRetries:
    def test_crash_once_recovers(self):
        result = _service(workers=2).submit(
            JobSpec(source=clean_source(2), core=None, name="c1",
                    chaos={"crash_attempts": [1]}))
        assert result.state is JobState.COMPLETED
        assert result.attempts == 2

    def test_crash_always_exhausts_with_worker_crash_error(self):
        service = _service(workers=2)
        result = service.submit(
            JobSpec(source=clean_source(3), core=None, name="c3",
                    chaos={"crash_attempts": [1, 2, 3]}))
        assert result.state is JobState.FAILED
        assert result.attempts == 3
        assert result.error["kind"] == "worker-crash"
        assert service.counters()["worker_crashes"] == 3

    def test_hang_is_reaped_and_retried(self):
        result = _service(workers=2).submit(
            JobSpec(source=clean_source(4), core=None, name="h1",
                    wall_timeout_s=3.0, chaos={"hang_attempts": [1]}))
        assert result.state is JobState.COMPLETED
        assert result.attempts == 2

    def test_internal_error_is_retried(self):
        result = _service(isolation=False).submit(
            JobSpec(source=clean_source(5), core=None, name="e1",
                    chaos={"error_attempts": [1]}))
        assert result.state is JobState.COMPLETED
        assert result.attempts == 2

    def test_deterministic_failures_are_not_retried(self):
        service = _service(isolation=False)
        result = service.submit(
            JobSpec(source=wild_jump_source(), core=None, name="wild"))
        assert result.state is JobState.FAILED
        assert result.attempts == 1
        assert service.counters()["retries"] == 0


class TestQuarantine:
    def test_breaker_opens_after_threshold(self):
        service = _service(isolation=False, breaker_threshold=3)
        spec = JobSpec(source=wild_jump_source(), core=None, name="toxic")
        states = [service.submit(spec).state for _ in range(5)]
        assert states[:3] == [JobState.FAILED] * 3
        assert states[3:] == [JobState.QUARANTINED] * 2
        counters = service.counters()
        assert counters["breaker_trips"] == 1
        assert counters["jobs_quarantined"] == 2
        quarantined = service.submit(spec)
        assert quarantined.error["kind"] == "internal"
        assert spec.program_hash in quarantined.error["message"]

    def test_healthy_programs_unaffected_by_open_breaker(self):
        service = _service(isolation=False, breaker_threshold=1)
        service.submit(JobSpec(source=wild_jump_source(), core=None))
        healthy = service.submit(JobSpec(source=clean_source(6), core=None))
        assert healthy.state is JobState.COMPLETED


class TestCache:
    def test_resubmission_hits(self):
        service = _service(isolation=False)
        spec = JobSpec(source=clean_source(7), core=None, name="cached")
        first = service.submit(spec)
        second = service.submit(spec)
        assert not first.cache_hit
        assert second.cache_hit
        assert second.metrics == first.metrics
        assert service.counters()["cache_hits"] == 1

    def test_duplicates_inside_one_batch_hit(self):
        service = _service(isolation=False)
        spec = JobSpec(source=clean_source(8), core=None)
        first, second = service.run([spec, spec])
        assert not first.cache_hit
        assert second.cache_hit

    def test_different_config_misses(self):
        service = _service(isolation=False)
        a = JobSpec(source=clean_source(9), core=None, max_insts=1000)
        b = JobSpec(source=clean_source(9), core=None, max_insts=2000)
        service.submit(a)
        assert not service.submit(b).cache_hit

    def test_failures_are_not_cached(self):
        service = _service(isolation=False)
        spec = JobSpec(source=wild_jump_source(), core=None)
        service.submit(spec)
        assert not service.submit(spec).cache_hit


class TestDegradation:
    def test_fast_fault_falls_back_to_precise(self):
        result = _service(isolation=False).submit(
            JobSpec(source=clean_source(10), core="xt910",
                    chaos={"fast_fault": True}))
        assert result.state is JobState.COMPLETED
        assert result.downgraded
        assert "fast-path fault" in result.downgrade_reason

    def test_divergence_falls_back_to_precise(self):
        result = _service(isolation=False).submit(
            JobSpec(source=clean_source(11), core="xt910",
                    chaos={"divergence": True}))
        assert result.state is JobState.COMPLETED
        assert result.downgraded
        assert "divergence" in result.downgrade_reason

    def test_fallback_is_bit_identical_to_direct_precise_run(self):
        # The degraded result must carry exactly the statistics a
        # direct precise-mode run of the same program produces.
        spec = JobSpec(source=clean_source(12), core="xt910",
                       chaos={"fast_fault": True})
        degraded = _service(isolation=False).submit(spec)
        assert degraded.downgraded
        program = assemble(spec.source, compress=spec.compress)
        direct = run_on_core(program, "xt910", fast=False,
                             max_insts=spec.max_insts)
        assert degraded.metrics["stats"] == direct.stats.as_comparable()

    def test_fast_mode_does_not_fall_back(self):
        result = _service(isolation=False).submit(
            JobSpec(source=clean_source(13), core="xt910", mode="fast",
                    chaos={"fast_fault": True}))
        assert result.state is JobState.FAILED
        assert not result.downgraded


class TestInvariants:
    def test_no_silent_loss_on_a_mixed_batch(self):
        service = _service(workers=2)
        specs = [
            JobSpec(source=clean_source(20), core=None, name="ok"),
            JobSpec(source=wild_jump_source(), core=None, name="bad"),
            JobSpec(source=clean_source(21), core=None, name="crashy",
                    chaos={"crash_attempts": [1]}),
            JobSpec(source="this is not assembly", core=None, name="junk"),
        ]
        results = service.run(specs)
        assert len(results) == len(specs)
        assert all(r.terminal for r in results)
        assert [r.name for r in results] == ["ok", "bad", "crashy", "junk"]
        for r in results:
            payload = json.dumps(r.to_dict())   # always serializable
            assert json.loads(payload)["state"] == r.state.value

    def test_counters_walk_into_the_metrics_registry(self):
        service = _service(isolation=False)
        service.submit(JobSpec(source=clean_source(22), core=None))
        registry = collect_service(service)
        assert registry["service.jobs_completed"] == 1
        assert "service.latency_p50_ms" in registry
