"""Poison-job suite: every hostile guest lands in its designated
terminal state with a JSON-serializable, reconstructible cause chain.

The poison programs mirror the chaos harness's generators — an
infinite loop, register-indirect wild jumps, a jump into data bytes
(decode bomb), a stack-smashing guest, a statically-detectable wild
store, an oversized source — plus raw unassemblable text.  Inline
execution (no process isolation) keeps this suite fast; none of these
programs can harm the host process, which is exactly the property
being tested.
"""

import json

import pytest

from repro.service import JobService, JobSpec, JobState, error_from_dict
from repro.service.chaos import (
    decode_bomb_source,
    loop_source,
    oversized_source,
    stack_smash_source,
    wild_jump_source,
    wild_store_source,
)


@pytest.fixture()
def service() -> JobService:
    return JobService(isolation=False, use_cache=False)


def _assert_definitive(result, state: JobState, kind: str) -> None:
    """The poison contract: designated state + serializable error."""
    assert result.state is state
    assert result.terminal
    assert result.error is not None
    assert result.error["kind"] == kind
    payload = json.dumps(result.to_dict())
    revived = json.loads(payload)
    assert revived["error"]["kind"] == kind
    # The cause chain must reconstruct into taxonomy objects.
    error = error_from_dict(result.error)
    assert error.kind == kind
    assert error.render()


class TestPoisonJobs:
    def test_infinite_loop_functional(self, service):
        result = service.submit(JobSpec(
            source=loop_source(), core=None, max_insts=10_000))
        _assert_definitive(result, JobState.TIMEOUT, "watchdog-timeout")
        assert result.partial
        assert result.metrics["instret"] == 10_000
        assert result.error["detail"]["watchdog"] == "instructions"
        assert not result.error["retryable"]

    def test_infinite_loop_timed_returns_partial_stats(self, service):
        result = service.submit(JobSpec(
            source=loop_source(1), core="xt910", max_insts=10_000))
        _assert_definitive(result, JobState.TIMEOUT, "watchdog-timeout")
        assert result.partial
        assert result.metrics["cycles"] > 0
        assert result.error["detail"]["instret"] == 10_000

    def test_wild_jump(self, service):
        result = service.submit(JobSpec(
            source=wild_jump_source(), core=None))
        _assert_definitive(result, JobState.FAILED, "guest-fault")
        assert "runtime fault" in result.error["message"]

    def test_decode_bomb(self, service):
        result = service.submit(JobSpec(
            source=decode_bomb_source(), core=None))
        _assert_definitive(result, JobState.FAILED, "guest-fault")

    def test_stack_smashing_guest(self, service):
        result = service.submit(JobSpec(
            source=stack_smash_source(), core=None, vet=False))
        _assert_definitive(result, JobState.FAILED, "guest-fault")

    def test_wild_store_is_rejected_at_admission(self, service):
        result = service.submit(JobSpec(
            source=wild_store_source(), core=None, vet=True))
        _assert_definitive(result, JobState.REJECTED, "guest-fault")
        assert result.error["detail"]["stage"] == "admission"
        assert any("mem-wild" in key
                   for key in result.error["detail"]["findings"])

    def test_wild_store_runs_without_vetting(self, service):
        # Contrast case: the same program is admissible (and harmless
        # on the permissive flat memory) when vetting is off.
        result = service.submit(JobSpec(
            source=wild_store_source(), core=None, vet=False))
        assert result.state is JobState.COMPLETED

    def test_oversized_program(self, service):
        result = service.submit(JobSpec(
            source=oversized_source(), core=None))
        _assert_definitive(result, JobState.REJECTED, "resource-exhausted")
        assert result.error["detail"]["stage"] == "admission"

    def test_unassemblable_text_has_cause_chain(self, service):
        result = service.submit(JobSpec(
            source="definitely not assembly\n", core=None))
        _assert_definitive(result, JobState.REJECTED, "guest-fault")
        assert result.error["cause"]["type"]   # the assembler's error
        revived = error_from_dict(result.error)
        assert revived.__cause__ is not None

    def test_poison_batch_all_terminal(self, service):
        specs = [
            JobSpec(source=loop_source(2), core=None, max_insts=5_000),
            JobSpec(source=wild_jump_source(2), core=None),
            JobSpec(source=decode_bomb_source(2), core=None),
            JobSpec(source=stack_smash_source(2), core=None, vet=False),
            JobSpec(source=wild_store_source(2), core=None),
            JobSpec(source=oversized_source(2), core=None),
        ]
        results = service.run(specs)
        assert len(results) == len(specs)
        assert all(r.terminal for r in results)
        assert all(r.error is not None for r in results)
