"""Retry policy, circuit breaker, and the content-addressed cache."""

import random

from repro.service.cache import ResultCache
from repro.service.job import JobResult, JobState
from repro.service.retry import CircuitBreaker, RetryPolicy


class TestRetryPolicy:
    def test_backoff_is_exponential_with_jitter_bounds(self):
        policy = RetryPolicy(max_attempts=5, backoff_base_s=0.1,
                             backoff_cap_s=10.0, jitter=0.5)
        rng = random.Random(7)
        for attempt in (1, 2, 3):
            nominal = 0.1 * 2 ** (attempt - 1)
            for _ in range(50):
                delay = policy.delay(attempt, rng)
                assert nominal * 0.5 <= delay <= nominal * 1.5

    def test_cap(self):
        policy = RetryPolicy(backoff_base_s=1.0, backoff_cap_s=1.5,
                             jitter=0.0)
        assert policy.delay(10, random.Random(0)) == 1.5

    def test_deterministic_given_seed(self):
        policy = RetryPolicy()
        a = [policy.delay(k, random.Random(42)) for k in (1, 2, 3)]
        b = [policy.delay(k, random.Random(42)) for k in (1, 2, 3)]
        assert a == b

    def test_exhausted(self):
        policy = RetryPolicy(max_attempts=3)
        assert not policy.exhausted(2)
        assert policy.exhausted(3)
        assert policy.exhausted(4)


class TestCircuitBreaker:
    def test_opens_after_threshold_consecutive_failures(self):
        breaker = CircuitBreaker(threshold=3)
        for _ in range(2):
            breaker.record_failure("prog")
        assert not breaker.is_open("prog")
        breaker.record_failure("prog")
        assert breaker.is_open("prog")
        assert breaker.trips == 1
        assert "prog" in breaker.open_keys

    def test_success_resets_the_streak(self):
        breaker = CircuitBreaker(threshold=2)
        breaker.record_failure("prog")
        breaker.record_success("prog")
        breaker.record_failure("prog")
        assert not breaker.is_open("prog")

    def test_keys_are_independent(self):
        breaker = CircuitBreaker(threshold=1)
        breaker.record_failure("toxic")
        assert breaker.is_open("toxic")
        assert not breaker.is_open("healthy")

    def test_reset_closes(self):
        breaker = CircuitBreaker(threshold=1)
        breaker.record_failure("prog")
        breaker.reset("prog")
        assert not breaker.is_open("prog")


def _completed(name: str = "job") -> JobResult:
    return JobResult(name=name, state=JobState.COMPLETED,
                     metrics={"cycles": 100})


class TestResultCache:
    KEY = ("prog", "config", "auto")

    def test_miss_then_hit(self):
        cache = ResultCache()
        assert cache.get(self.KEY) is None
        cache.put(self.KEY, _completed())
        hit = cache.get(self.KEY)
        assert hit is not None and hit.cache_hit
        assert hit.metrics == {"cycles": 100}
        assert cache.counters() == {"hits": 1, "misses": 1, "entries": 1}

    def test_only_completed_results_are_cached(self):
        cache = ResultCache()
        cache.put(self.KEY, JobResult(name="x", state=JobState.FAILED))
        assert cache.get(self.KEY) is None

    def test_returned_results_are_independent_copies(self):
        cache = ResultCache()
        cache.put(self.KEY, _completed())
        first = cache.get(self.KEY)
        first.metrics["cycles"] = -1
        first.state = JobState.FAILED
        second = cache.get(self.KEY)
        assert second.metrics == {"cycles": 100}
        assert second.state is JobState.COMPLETED

    def test_lru_eviction(self):
        cache = ResultCache(capacity=2)
        cache.put(("a",), _completed("a"))
        cache.put(("b",), _completed("b"))
        assert cache.get(("a",)) is not None   # refresh "a"
        cache.put(("c",), _completed("c"))     # evicts "b"
        assert cache.get(("b",)) is None
        assert cache.get(("a",)) is not None
        assert cache.get(("c",)) is not None
