"""The crash-isolated worker pool: every task gets exactly one outcome."""

import os
import time

from repro.service.pool import WorkerPool, run_tasks, serialize_exception
from repro.service.errors import GuestFault


def _double(x):
    return x * 2


def _raise(x):
    raise ValueError(f"task {x}")


def _exit(x):
    os._exit(77)


def _hang(x):
    while True:
        time.sleep(0.05)


def _mixed(x):
    if x == "crash":
        os._exit(77)
    if x == "error":
        raise ValueError("bad task")
    return f"ok:{x}"


class TestOutcomes:
    def test_ok(self):
        [outcome] = run_tasks(_double, [21], workers=1)
        assert outcome.ok and outcome.value == 42

    def test_error_is_serialized_not_raised(self):
        [outcome] = run_tasks(_raise, [7], workers=1)
        assert outcome.status == "error"
        assert outcome.value["type"] == "ValueError"
        assert "task 7" in outcome.value["message"]

    def test_crash_is_classified_with_exitcode(self):
        [outcome] = run_tasks(_exit, [0], workers=1)
        assert outcome.status == "crash"
        assert outcome.exitcode == 77

    def test_hang_is_reaped(self):
        [outcome] = run_tasks(_hang, [0], workers=1, timeout=0.5)
        assert outcome.status == "timeout"
        assert outcome.duration_s >= 0.5

    def test_sibling_isolation(self):
        # A crash and an error must not disturb the healthy tasks.
        outcomes = run_tasks(_mixed, ["a", "crash", "error", "b"],
                             workers=2)
        assert [o.status for o in outcomes] \
            == ["ok", "crash", "error", "ok"]
        assert outcomes[0].value == "ok:a"
        assert outcomes[3].value == "ok:b"

    def test_more_tasks_than_workers(self):
        outcomes = run_tasks(_double, list(range(9)), workers=2)
        assert [o.value for o in outcomes] == [i * 2 for i in range(9)]

    def test_every_task_resolves(self):
        with WorkerPool(2, _double) as pool:
            for i in range(5):
                pool.submit(i, i)
            collected = pool.drain()
        assert sorted(key for key, _ in collected) == list(range(5))
        assert pool.outstanding == 0


class TestSerializeException:
    def test_service_error_keeps_taxonomy_form(self):
        payload = serialize_exception(GuestFault("nope"))
        assert payload["kind"] == "guest-fault"

    def test_external_keeps_type_and_traceback(self):
        try:
            raise ValueError("boom")
        except ValueError as exc:
            payload = serialize_exception(exc)
        assert payload["kind"] == "external"
        assert payload["type"] == "ValueError"
        assert any("boom" in line for line in payload["traceback"])
