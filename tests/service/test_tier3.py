"""Tier-3 through the job service: ladder rungs and cache-key tiers.

The degradation ladder for ``mode="auto"`` now enters at the
specializing translator (tier 3) and rides down tier 2 (fast) to
tier 1 (precise); pinned modes never downgrade.  The result cache key
carries the numeric execution tier, so tier-3 results can never be
served for a tier-2 request (or vice versa) even though both complete
successfully on the same program + config.
"""

from repro.service import JobService, JobSpec, JobState, RetryPolicy
from repro.service.chaos import clean_source

FAST_RETRY = RetryPolicy(max_attempts=3, backoff_base_s=0.01,
                         backoff_cap_s=0.05, jitter=0.2)


def _service(**kwargs) -> JobService:
    kwargs.setdefault("retry", FAST_RETRY)
    kwargs.setdefault("isolation", False)
    return JobService(**kwargs)


class TestCacheKeyTier:
    def test_key_carries_the_execution_tier(self):
        spec = JobSpec(source=clean_source(0))
        assert spec.cache_key() == (spec.program_hash, spec.config_hash,
                                    "auto", 3)
        assert spec.cache_key("precise")[-1] == 1
        assert spec.cache_key("fast")[-1] == 2
        assert spec.cache_key("tier3")[-1] == 3

    def test_execution_tier_property(self):
        source = clean_source(1)
        assert JobSpec(source=source, mode="precise").execution_tier == 1
        assert JobSpec(source=source, mode="fast").execution_tier == 2
        assert JobSpec(source=source, mode="tier3").execution_tier == 3
        assert JobSpec(source=source, mode="auto").execution_tier == 3

    def test_tiers_do_not_collide_in_the_result_cache(self):
        service = _service(use_cache=True)
        source = clean_source(2)
        fast = service.submit(JobSpec(source=source, core=None,
                                      mode="fast", name="f"))
        assert fast.state is JobState.COMPLETED and not fast.cache_hit
        tier3 = service.submit(JobSpec(source=source, core=None,
                                       mode="tier3", name="t"))
        assert tier3.state is JobState.COMPLETED
        assert not tier3.cache_hit          # tier-2 entry must not serve
        again = service.submit(JobSpec(source=source, core=None,
                                       mode="tier3", name="t2"))
        assert again.cache_hit              # same tier does


class TestLadder:
    def test_auto_completes_on_tier3(self):
        result = _service().submit(
            JobSpec(source=clean_source(3), core="xt910", name="auto"))
        assert result.state is JobState.COMPLETED
        assert not result.downgraded
        assert result.metrics["tier"] == 3

    def test_tier3_fault_lands_on_fast(self):
        result = _service().submit(
            JobSpec(source=clean_source(4), core="xt910",
                    chaos={"tier3_fault": True}))
        assert result.state is JobState.COMPLETED
        assert result.downgraded
        assert result.metrics["tier"] == 2
        assert "tier3" in result.downgrade_reason
        assert "codegen fault" in result.downgrade_reason

    def test_fast_fault_rides_down_to_precise(self):
        # The block-cache machinery underlies tiers 3 and 2: a fast
        # fault burns both rungs and the reason chain records each.
        result = _service().submit(
            JobSpec(source=clean_source(5), core="xt910",
                    chaos={"fast_fault": True}))
        assert result.state is JobState.COMPLETED
        assert result.downgraded
        assert result.metrics["tier"] == 1
        assert "tier3" in result.downgrade_reason
        assert "tier2" in result.downgrade_reason

    def test_pinned_tier3_mode_does_not_fall_back(self):
        result = _service().submit(
            JobSpec(source=clean_source(6), core="xt910", mode="tier3",
                    chaos={"tier3_fault": True}))
        assert result.state is JobState.FAILED
        assert not result.downgraded

    def test_functional_ladder_matches_timed(self):
        result = _service().submit(
            JobSpec(source=clean_source(7), core=None,
                    chaos={"tier3_fault": True}))
        assert result.state is JobState.COMPLETED
        assert result.downgraded
        assert result.metrics["tier"] == 2

    def test_divergence_lands_on_precise(self):
        result = _service().submit(
            JobSpec(source=clean_source(8), core="xt910",
                    chaos={"divergence": True}))
        assert result.state is JobState.COMPLETED
        assert result.downgraded
        assert result.metrics["tier"] == 1
        assert "divergence" in result.downgrade_reason
