"""The error taxonomy: kinds, retryability, serializable cause chains."""

import json

import pytest

from repro.service.errors import (
    DivergenceDetected,
    GuestFault,
    ResourceExhausted,
    ServiceError,
    WatchdogTimeout,
    WorkerCrash,
    error_from_dict,
)

ALL_KINDS = [
    (ServiceError, "internal", False),
    (GuestFault, "guest-fault", False),
    (WatchdogTimeout, "watchdog-timeout", False),
    (WorkerCrash, "worker-crash", True),
    (ResourceExhausted, "resource-exhausted", False),
    (DivergenceDetected, "divergence", False),
]


class TestTaxonomy:
    @pytest.mark.parametrize("cls,kind,retryable", ALL_KINDS)
    def test_kind_and_default_retryable(self, cls, kind, retryable):
        error = cls("boom")
        assert error.kind == kind
        assert error.retryable is retryable
        assert error.to_dict()["kind"] == kind

    def test_retryable_override(self):
        # The wall-clock flavour of a timeout is transient.
        error = WatchdogTimeout("wall clock", retryable=True)
        assert error.retryable is True
        assert error.to_dict()["retryable"] is True

    def test_detail_is_carried(self):
        error = GuestFault("lint", detail={"findings": ["mem-wild"]})
        assert error.to_dict()["detail"] == {"findings": ["mem-wild"]}


def _chained() -> ServiceError:
    try:
        try:
            raise KeyError("inner")
        except KeyError as inner:
            raise ValueError("middle") from inner
    except ValueError as middle:
        fault = GuestFault("outer", detail={"stage": "runtime"})
        fault.__cause__ = middle
        return fault


class TestCauseChains:
    def test_to_dict_walks_the_chain(self):
        payload = _chained().to_dict()
        assert payload["cause"]["type"] == "ValueError"
        assert payload["cause"]["cause"]["type"] == "KeyError"

    def test_payload_is_json_round_trippable(self):
        payload = _chained().to_dict()
        assert json.loads(json.dumps(payload)) == payload

    def test_reconstruction_preserves_kind_and_chain(self):
        revived = error_from_dict(_chained().to_dict())
        assert isinstance(revived, GuestFault)
        assert revived.message == "outer"
        assert revived.detail == {"stage": "runtime"}
        assert "ValueError" in str(revived.__cause__)

    def test_nested_service_errors_reconstruct_as_taxonomy(self):
        outer = WorkerCrash("died")
        outer.__cause__ = ResourceExhausted("oom")
        revived = error_from_dict(outer.to_dict())
        assert isinstance(revived.__cause__, ResourceExhausted)
        assert revived.retryable is True

    def test_render_names_every_link(self):
        text = _chained().render()
        assert "guest-fault: outer" in text
        assert "caused by ValueError: middle" in text
        assert "caused by KeyError" in text

    def test_unknown_kind_falls_back_to_base(self):
        revived = error_from_dict({"kind": "martian", "message": "?"})
        assert type(revived) is ServiceError
