"""Inline uarch documents on the job path.

A JobSpec may carry a config *document* instead of a preset name: it is
validated at admission (invalid documents are REJECTED with the dotted
problem paths, never retried), resolved in the worker, and folded into
``config_hash`` so differently-configured runs never share a cache
entry.
"""

from repro.service import JobService, JobSpec, JobState, RetryPolicy
from repro.service.chaos import clean_source

FAST_RETRY = RetryPolicy(max_attempts=3, backoff_base_s=0.01,
                         backoff_cap_s=0.05, jitter=0.2)


def _service(**kwargs) -> JobService:
    kwargs.setdefault("retry", FAST_RETRY)
    kwargs.setdefault("isolation", False)
    return JobService(**kwargs)


class TestInlineUarch:
    def test_valid_document_runs_timed(self):
        result = _service().submit(JobSpec(
            source=clean_source(0), core=None,
            uarch={"name": "inline", "rob_entries": 96}, name="doc"))
        assert result.state is JobState.COMPLETED
        assert result.metrics["cycles"] > 0

    def test_document_equivalent_to_preset(self):
        from repro.uarch import uconfig
        from repro.uarch.presets import get_preset

        service = _service()
        by_name = service.submit(JobSpec(
            source=clean_source(1), core="xt910", name="by-name"))
        doc = uconfig.config_to_doc(get_preset("xt910"))
        by_doc = service.submit(JobSpec(
            source=clean_source(1), core=None, uarch=doc, name="by-doc"))
        assert by_name.state is by_doc.state is JobState.COMPLETED
        assert by_doc.metrics["cycles"] == by_name.metrics["cycles"]

    def test_invalid_document_rejected_at_admission(self):
        result = _service().submit(JobSpec(
            source=clean_source(2), core=None,
            uarch={"rob_entries": "lots"}, name="bad-doc"))
        assert result.state is JobState.REJECTED
        assert "rob_entries" in result.error["message"]
        assert result.attempts == 1          # deterministic: no retries

    def test_unknown_key_rejected_with_path(self):
        result = _service().submit(JobSpec(
            source=clean_source(3), core=None,
            uarch={"frontend": {"depht": 7}}, name="typo"))
        assert result.state is JobState.REJECTED
        assert "frontend.depht" in result.error["message"]

    def test_uarch_feeds_the_cache_key(self):
        spec_a = JobSpec(source=clean_source(4), core=None,
                         uarch={"rob_entries": 96})
        spec_b = JobSpec(source=clean_source(4), core=None,
                         uarch={"rob_entries": 128})
        spec_preset = JobSpec(source=clean_source(4), core="xt910")
        hashes = {spec_a.config_hash, spec_b.config_hash,
                  spec_preset.config_hash}
        assert len(hashes) == 3
        # same document, same key: resubmission is a cache hit
        service = _service()
        first = service.submit(spec_a)
        second = service.submit(JobSpec(source=clean_source(4), core=None,
                                        uarch={"rob_entries": 96}))
        assert first.state is second.state is JobState.COMPLETED
        assert second.cache_hit
        assert second.metrics["cycles"] == first.metrics["cycles"]

    def test_different_documents_do_not_share_results(self):
        service = _service()
        fast = service.submit(JobSpec(
            source=clean_source(5), core=None,
            uarch={"name": "fast-mem",
                   "mem": {"dram": {"latency": 10}}}))
        slow = service.submit(JobSpec(
            source=clean_source(5), core=None,
            uarch={"name": "slow-mem",
                   "mem": {"dram": {"latency": 400}}}))
        assert not slow.cache_hit
        assert slow.metrics["cycles"] > fast.metrics["cycles"]
