"""Chaos harness mechanics: seeded plans, audit classification, and a
small end-to-end campaign (CI runs the full 100-fault campaign in its
own job; this suite keeps the in-tree cost low)."""

from repro.service import JobResult, JobState
from repro.service.chaos import (
    ChaosReport,
    PlannedJob,
    _audit,
    clean_source,
    generate_plan,
    run_chaos,
)
from repro.service.job import JobSpec
from repro.service import bench as service_bench


class TestPlan:
    def test_deterministic_given_seed(self):
        a = generate_plan(target_faults=30, seed=2020)
        b = generate_plan(target_faults=30, seed=2020)
        assert [(j.kind, j.spec.name, j.spec.program_hash) for j in a] \
            == [(j.kind, j.spec.name, j.spec.program_hash) for j in b]

    def test_different_seed_different_plan(self):
        a = generate_plan(target_faults=30, seed=1)
        b = generate_plan(target_faults=30, seed=2)
        assert [j.kind for j in a] != [j.kind for j in b]

    def test_carries_at_least_target_faults(self):
        plan = generate_plan(target_faults=30, seed=7)
        assert sum(j.faults for j in plan) >= 30

    def test_program_hashes_are_unique_per_job(self):
        # Accidental hash collisions would let the cache or the
        # breaker couple jobs the plan meant to be independent.
        plan = generate_plan(target_faults=30, seed=7)
        hashes = [j.spec.program_hash for j in plan]
        assert len(set(hashes)) == len(hashes)


def _planned(expected=JobState.COMPLETED) -> PlannedJob:
    spec = JobSpec(source=clean_source(0), core=None, name="p")
    return PlannedJob("clean-functional", spec,
                      frozenset({expected}), faults=0)


class TestAudit:
    def test_missing_result_is_silent(self):
        report = ChaosReport()
        _audit(_planned(), None, report)
        assert report.silent and "no result" in report.silent[0]

    def test_non_terminal_is_silent(self):
        report = ChaosReport()
        _audit(_planned(),
               JobResult(name="p", state=JobState.RUNNING), report)
        assert report.silent

    def test_failure_without_error_is_silent(self):
        report = ChaosReport()
        _audit(_planned(JobState.FAILED),
               JobResult(name="p", state=JobState.FAILED, error=None),
               report)
        assert report.silent and "without a structured error" \
            in report.silent[0]

    def test_wrong_state_is_unexpected_not_silent(self):
        report = ChaosReport()
        _audit(_planned(JobState.FAILED),
               JobResult(name="p", state=JobState.COMPLETED), report)
        assert report.unexpected and not report.silent

    def test_classification_buckets(self):
        report = ChaosReport()
        _audit(_planned(), JobResult(name="p", state=JobState.COMPLETED),
               report)
        _audit(_planned(), JobResult(name="p", state=JobState.COMPLETED,
                                     attempts=2), report)
        _audit(_planned(), JobResult(name="p", state=JobState.COMPLETED,
                                     downgraded=True), report)
        assert report.outcomes == {"completed-clean": 1,
                                   "recovered-retry": 1,
                                   "recovered-fallback": 1}


class TestCampaign:
    def test_small_campaign_has_no_silent_losses(self):
        report = run_chaos(target_faults=12, seed=11, workers=2,
                           toxic_submissions=4)
        assert report.faults_injected >= 12
        assert report.definitive == report.jobs
        assert report.silent == []
        assert report.unexpected == []


class TestServiceBench:
    def test_quick_bench_payload_and_gate(self):
        payload = service_bench.run_bench(quick=True, jobs=4, workers=2)
        assert payload["completed"] == payload["jobs"] == 4
        assert payload["jobs_per_s"] > 0
        assert service_bench.check_regression(payload, payload) == []
        # A faster baseline beyond tolerance must trip the gate.
        baseline = dict(payload)
        baseline["jobs_per_s"] = payload["jobs_per_s"] * 10
        failures = service_bench.check_regression(payload, baseline)
        assert failures and "jobs_per_s" in failures[0]
