"""Physical model tests: Table II calibration and scaling trends."""

import pytest

from repro.physical import (
    OperatingPoint,
    PhysicalModel,
    ProcessNode,
    table2_rows,
)
from repro.uarch.presets import u54, xt910


class TestTable2Calibration:
    """Model values must land on the paper's published numbers."""

    @pytest.fixture(scope="class")
    def rows(self):
        return table2_rows()

    @pytest.mark.parametrize("key,tolerance", [
        ("frequency_nominal_ghz", 0.03),
        ("frequency_boost_ghz", 0.03),
        ("frequency_7nm_ghz", 0.03),
        ("area_with_vec_mm2", 0.05),
        ("area_without_vec_mm2", 0.05),
        ("dynamic_uw_per_mhz", 0.10),
    ])
    def test_within_tolerance(self, rows, key, tolerance):
        row = rows[key]
        assert abs(row["model"] - row["paper"]) / row["paper"] <= tolerance

    def test_vector_unit_costs_point2_mm2(self, rows):
        delta = rows["area_with_vec_mm2"]["model"] \
            - rows["area_without_vec_mm2"]["model"]
        assert abs(delta - 0.2) < 0.02


class TestScalingTrends:
    def test_bigger_l1_costs_area(self):
        model = PhysicalModel()
        small = xt910(l1_kb=32)
        big = xt910(l1_kb=64)
        assert model.area_mm2(big) > model.area_mm2(small)

    def test_l2_excluded_by_default(self):
        model = PhysicalModel()
        cfg = xt910()
        assert model.area_mm2(cfg, include_l2=True) \
            > model.area_mm2(cfg) + 1.0  # MBs of SRAM dominate

    def test_smaller_core_is_smaller(self):
        model = PhysicalModel()
        assert model.area_mm2(u54()) < model.area_mm2(xt910())

    def test_voltage_boost_raises_frequency(self):
        model = PhysicalModel()
        cfg = xt910()
        assert model.frequency_ghz(cfg, OperatingPoint.boost()) \
            > model.frequency_ghz(cfg, OperatingPoint.nominal())

    def test_voltage_boost_costs_quadratic_power(self):
        model = PhysicalModel()
        cfg = xt910()
        nominal = model.dynamic_uw_per_mhz(cfg, OperatingPoint.nominal())
        boost = model.dynamic_uw_per_mhz(cfg, OperatingPoint.boost())
        assert boost / nominal == pytest.approx((1.0 / 0.8) ** 2)

    def test_7nm_is_denser_and_faster(self):
        cfg = xt910()
        m12 = PhysicalModel(ProcessNode.tsmc12())
        m7 = PhysicalModel(ProcessNode.tsmc7())
        assert m7.area_mm2(cfg) < m12.area_mm2(cfg)
        assert m7.frequency_ghz(cfg) > m12.frequency_ghz(cfg)

    def test_shallow_pipeline_clocks_lower(self):
        model = PhysicalModel()
        assert model.frequency_ghz(u54()) < model.frequency_ghz(xt910())

    def test_estimate_bundle(self):
        est = PhysicalModel().estimate(xt910())
        assert est.area_mm2 > 0
        assert est.frequency_ghz > 0
        assert est.dynamic_uw_per_mhz > 0
