"""MOSEI coherence protocol tests (paper section VI)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.mem.cache import LineState
from repro.smp import CoherenceConfig, CoherentCluster


def make_cluster(**kw):
    defaults = dict(cores=4, l1_size=4096, l1_assoc=2, l2_size=65536,
                    l2_assoc=4)
    defaults.update(kw)
    return CoherentCluster(CoherenceConfig(**defaults))


class TestStateTransitions:
    def test_read_miss_installs_exclusive(self):
        c = make_cluster()
        c.access(0, 0x1000, is_write=False)
        assert c.state_of(0, 0x1000) is LineState.EXCLUSIVE

    def test_second_reader_shares(self):
        c = make_cluster()
        c.access(0, 0x1000, False)
        c.access(1, 0x1000, False)
        assert c.state_of(0, 0x1000) is LineState.SHARED
        assert c.state_of(1, 0x1000) is LineState.SHARED

    def test_write_installs_modified(self):
        c = make_cluster()
        c.access(0, 0x1000, True)
        assert c.state_of(0, 0x1000) is LineState.MODIFIED

    def test_write_invalidates_other_copies(self):
        c = make_cluster()
        c.access(0, 0x1000, False)
        c.access(1, 0x1000, False)
        c.access(2, 0x1000, True)
        assert c.state_of(2, 0x1000) is LineState.MODIFIED
        assert c.state_of(0, 0x1000) is LineState.INVALID
        assert c.state_of(1, 0x1000) is LineState.INVALID
        assert c.stats.invalidations == 2

    def test_reader_downgrades_modified_owner_to_owned(self):
        c = make_cluster()
        c.access(0, 0x1000, True)
        c.access(1, 0x1000, False)
        assert c.state_of(0, 0x1000) is LineState.OWNED
        assert c.state_of(1, 0x1000) is LineState.SHARED
        assert c.stats.cache_to_cache == 1

    def test_upgrade_on_write_hit_to_shared(self):
        c = make_cluster()
        c.access(0, 0x1000, False)
        c.access(1, 0x1000, False)
        c.access(0, 0x1000, True)   # write hit on S: upgrade
        assert c.state_of(0, 0x1000) is LineState.MODIFIED
        assert c.state_of(1, 0x1000) is LineState.INVALID
        assert c.stats.upgrades == 1

    def test_exclusive_downgrades_to_shared(self):
        c = make_cluster()
        c.access(0, 0x1000, False)   # E
        c.access(1, 0x1000, False)
        assert c.state_of(0, 0x1000) is LineState.SHARED


class TestLatencies:
    def test_local_hit_is_cheapest(self):
        c = make_cluster()
        c.access(0, 0x1000, False)
        assert c.access(0, 0x1008, False) == c.config.l1_latency

    def test_remote_dirty_costs_snoop(self):
        c = make_cluster()
        c.access(0, 0x1000, True)
        miss_latency = c.access(1, 0x1000, False)
        c2 = make_cluster()
        c2.access(0, 0x1000, False)
        c2.access(1, 0x2000, False)   # unshared: plain L2/DRAM path
        assert miss_latency >= c.config.snoop_latency

    def test_dram_fill_expensive(self):
        c = make_cluster()
        latency = c.access(0, 0x1000, False)
        assert latency > 200


class TestSnoopFilter:
    def test_filter_limits_snoops_to_sharers(self):
        with_filter = make_cluster(snoop_filter=True)
        without = make_cluster(snoop_filter=False)
        for c in (with_filter, without):
            # Disjoint per-core working sets: no actual sharing.
            for core in range(4):
                for i in range(16):
                    c.access(core, 0x10000 * (core + 1) + i * 64, False)
        assert with_filter.stats.snoops_sent == 0
        assert without.stats.snoops_sent > 0

    def test_filter_still_finds_real_sharers(self):
        c = make_cluster(snoop_filter=True)
        c.access(0, 0x1000, True)
        c.access(1, 0x1000, False)
        assert c.stats.snoops_sent >= 1
        assert c.state_of(1, 0x1000) is LineState.SHARED


class TestInclusion:
    def test_l2_eviction_back_invalidates(self):
        # L2 with 4 ways and few sets: force an eviction of a line a
        # core still holds.
        c = make_cluster(l2_size=4096, l2_assoc=1)  # 64 sets
        c.access(0, 0x0, False)
        # Same L2 set: line 0 and line 64*64.
        c.access(1, 64 * 64, False)
        assert c.state_of(0, 0x0) is LineState.INVALID
        assert c.stats.back_invalidations == 1

    def test_invariants_hold(self):
        c = make_cluster()
        for i in range(64):
            c.access(i % 4, 0x1000 + (i % 8) * 64, i % 3 == 0)
        c.check_invariants()


class TestConfig:
    def test_cluster_size_limits(self):
        with pytest.raises(ValueError):
            make_cluster(cores=5)
        with pytest.raises(ValueError):
            make_cluster(cores=0)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 3), st.integers(0, 63),
                          st.booleans()), min_size=1, max_size=300))
def test_invariants_under_random_traffic(ops):
    """Single-writer + inclusion hold under arbitrary access interleaving."""
    c = CoherentCluster(CoherenceConfig(
        cores=4, l1_size=2048, l1_assoc=2, l2_size=16384, l2_assoc=4))
    for core, line, is_write in ops:
        c.access(core, line * 64, is_write)
    c.check_invariants()
