"""CLINT/PLIC tests: register maps, interrupt delivery, IPIs."""

import pytest

from repro.asm import assemble
from repro.sim import Emulator, Memory
from repro.smp.interrupts import (
    CLINT_BASE,
    Clint,
    MIP_MEIP,
    MIP_MSIP,
    MIP_MTIP,
    PLIC_BASE,
    Plic,
    attach_interrupt_controllers,
)


class TestClintUnit:
    def test_msip_sets_software_interrupt(self):
        clint = Clint(harts=2)
        assert clint.pending(0) == 0
        clint.send_ipi(0)
        assert clint.pending(0) == MIP_MSIP
        assert clint.pending(1) == 0

    def test_timer_fires_at_mtimecmp(self):
        clint = Clint(harts=1)
        clint.mtimecmp[0] = 100
        clint.tick(99)
        assert clint.pending(0) == 0
        clint.tick(1)
        assert clint.pending(0) == MIP_MTIP

    def test_mmio_register_map(self):
        clint = Clint(harts=2)
        clint.store(0x0, 1, 4)           # msip[0]
        assert clint.msip[0] == 1
        clint.store(0x4, 1, 4)           # msip[1]
        assert clint.msip[1] == 1
        clint.store(0x4000, 12345, 8)    # mtimecmp[0]
        assert clint.mtimecmp[0] == 12345
        assert clint.load(0x4000, 8) == 12345
        clint.store(0xBFF8, 777, 8)      # mtime (writable w/o time_fn)
        assert clint.load(0xBFF8, 8) == 777

    def test_bound_time_source(self):
        time = [0]
        clint = Clint(harts=1, time_fn=lambda: time[0])
        clint.mtimecmp[0] = 5
        time[0] = 10
        assert clint.pending(0) == MIP_MTIP


class TestPlicUnit:
    def test_claim_complete_cycle(self):
        plic = Plic(sources=8, contexts=1)
        plic.priority[3] = 5
        plic.contexts[0].enables = 1 << 3
        plic.raise_interrupt(3)
        assert plic.pending(0) == MIP_MEIP
        assert plic.claim(0) == 3
        assert plic.pending(0) == 0          # claimed: no longer asserted
        plic.complete(0, 3)
        assert plic.claim(0) == 0            # nothing pending

    def test_priority_ordering(self):
        plic = Plic(sources=8, contexts=1)
        plic.contexts[0].enables = 0xFF << 1
        plic.priority[2] = 2
        plic.priority[5] = 7
        plic.raise_interrupt(2)
        plic.raise_interrupt(5)
        assert plic.claim(0) == 5            # higher priority first
        assert plic.claim(0) == 2

    def test_threshold_masks(self):
        plic = Plic(sources=4, contexts=1)
        plic.contexts[0].enables = 1 << 1
        plic.priority[1] = 2
        plic.contexts[0].threshold = 3
        plic.raise_interrupt(1)
        assert plic.pending(0) == 0          # below threshold
        plic.contexts[0].threshold = 1
        assert plic.pending(0) == MIP_MEIP

    def test_disabled_source_invisible(self):
        plic = Plic(sources=4, contexts=2)
        plic.priority[1] = 1
        plic.contexts[1].enables = 1 << 1
        plic.raise_interrupt(1)
        assert plic.pending(0) == 0
        assert plic.pending(1) == MIP_MEIP

    def test_mmio_priority_and_enable(self):
        plic = Plic(sources=4, contexts=1)
        plic.store(4 * 2, 6, 4)              # priority[2] = 6
        assert plic.priority[2] == 6
        plic.store(0x2000, 1 << 2, 4)        # enable source 2, ctx 0
        assert plic.contexts[0].enables == 1 << 2
        plic.raise_interrupt(2)
        assert plic.load(0x200004, 4) == 2   # claim via MMIO
        plic.store(0x200004, 2, 4)           # complete via MMIO
        assert plic.contexts[0].claimed == set()


TIMER_PROGRAM = """
    .equ CLINT, 0x02000000
    .data
    .align 3
ticks: .dword 0
    .text
_start:
    la t0, handler
    csrw mtvec, t0
    # mtimecmp[0] = mtime + 50
    li t1, CLINT
    li t2, 0xBFF8
    add t2, t1, t2
    ld t3, 0(t2)
    addi t3, t3, 50
    li t4, 0x4000
    add t4, t1, t4
    sd t3, 0(t4)
    # enable machine timer interrupts
    li t5, 0x80          # mie.MTIE
    csrw mie, t5
    li t5, 0x8           # mstatus.MIE
    csrs mstatus, t5
wait:
    la t6, ticks
    ld a1, 0(t6)
    beqz a1, wait
    mv a0, a1            # exit code = tick count
    li a7, 93
    ecall

handler:
    # acknowledge: push mtimecmp far into the future
    li t1, CLINT
    li t4, 0x4000
    add t4, t1, t4
    li t3, -1
    sd t3, 0(t4)
    la t6, ticks
    ld a2, 0(t6)
    addi a2, a2, 1
    sd a2, 0(t6)
    mret
"""


class TestInterruptDelivery:
    def _machine(self, source: str):
        program = assemble(source)
        memory = Memory()
        memory.load_program(program)
        emulator = Emulator(program, memory=memory, load=False)
        clint, plic = attach_interrupt_controllers(
            memory, harts=1, time_fn=lambda: emulator.state.instret)
        emulator.interrupt_fn = lambda: clint.pending(0) | plic.pending(0)
        return emulator, clint, plic

    def test_timer_interrupt_fires_and_returns(self):
        emulator, _, _ = self._machine(TIMER_PROGRAM)
        exit_code = emulator.run(max_steps=100_000)
        assert exit_code == 1

    def test_mcause_reports_interrupt(self):
        source = TIMER_PROGRAM.replace(
            "handler:", "handler:\n    csrr s10, mcause")
        emulator, _, _ = self._machine(source)
        emulator.run(max_steps=100_000)
        assert emulator.state.regs[26] == (1 << 63) | 7  # s10: MTI

    def test_software_interrupt_via_msip(self):
        program = """
            .equ CLINT, 0x02000000
            .text
        _start:
            la t0, handler
            csrw mtvec, t0
            li t1, 0x8           # mie.MSIE
            csrw mie, t1
            # fire an IPI at ourselves through the CLINT msip register
            li t2, CLINT
            li t3, 1
            sw t3, 0(t2)
            li t1, 0x8           # mstatus.MIE: interrupt taken here
            csrs mstatus, t1
        spin:
            j spin
        handler:
            li t2, CLINT
            sw x0, 0(t2)         # clear msip
            csrr a0, mcause
            andi a0, a0, 0xF     # low bits of cause = 3
            li a7, 93
            ecall
        """
        emulator, _, _ = self._machine(program)
        assert emulator.run(max_steps=10_000) == 3

    def test_masked_interrupt_not_taken(self):
        # Without mstatus.MIE the timer never preempts: we hit the
        # step limit in the spin loop instead of vectoring.
        source = TIMER_PROGRAM.replace("csrs mstatus, t5", "nop")
        emulator, _, _ = self._machine(source)
        from repro.sim import EmulatorError

        with pytest.raises(EmulatorError, match="instruction limit"):
            emulator.run(max_steps=20_000)

    def test_external_interrupt_via_plic(self):
        program = """
            .equ PLIC, 0x0C000000
            .text
        _start:
            la t0, handler
            csrw mtvec, t0
            # priority[5] = 1; enable source 5 for context 0
            li t1, PLIC
            li t2, 1
            sw t2, 20(t1)        # priority[5]
            li t3, 0x2000
            add t3, t1, t3
            li t2, 32            # 1 << 5
            sw t2, 0(t3)
            li t4, 0x800         # mie.MEIE
            csrw mie, t4
            li t4, 0x8
            csrs mstatus, t4
        spin:
            j spin
        handler:
            li t1, PLIC
            li t3, 0x200000
            add t3, t1, t3
            lw a0, 4(t3)         # claim: returns the source id
            sw a0, 4(t3)         # complete
            li a7, 93
            ecall
        """
        emulator, clint, plic = self._machine(program)
        # Fire the device interrupt after a few instructions by hooking
        # the spin: simplest is to raise it before running.
        plic.raise_interrupt(5)
        assert emulator.run(max_steps=10_000) == 5
