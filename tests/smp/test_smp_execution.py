"""Functional SMP tests: real parallel programs over shared memory."""

import pytest

from repro.asm import assemble
from repro.smp import NcoreConfig, NcoreSystem, run_smp
from repro.smp.coherence import CoherenceConfig


ATOMIC_COUNTER = """
    .equ PER_HART, 200
    .data
    .align 3
counter: .dword 0
    .text
_start:
    csrr t0, mhartid
    li t1, 0
    la t2, counter
add_loop:
    li t3, 1
    amoadd.d x0, t3, (t2)
    addi t1, t1, 1
    li t4, PER_HART
    blt t1, t4, add_loop
    li a0, 0
    li a7, 93
    ecall
"""

LRSC_COUNTER = """
    .equ PER_HART, 100
    .data
    .align 3
counter: .dword 0
    .text
_start:
    li t1, 0
    la t2, counter
retry:
    lr.d t3, (t2)
    addi t3, t3, 1
    sc.d t4, t3, (t2)
    bnez t4, retry
    addi t1, t1, 1
    li t5, PER_HART
    blt t1, t5, retry_enter
    li a0, 0
    li a7, 93
    ecall
retry_enter:
    j retry
"""

SPINLOCK = """
    .equ PER_HART, 60
    .data
    .align 3
lock:    .dword 0
shared:  .dword 0
    .text
_start:
    li s0, 0
    la s1, lock
    la s2, shared
outer:
    # acquire (amoswap test-and-set)
acquire:
    li t0, 1
    amoswap.d t1, t0, (s1)
    bnez t1, acquire
    # critical section: non-atomic read-modify-write, safe under lock
    ld t2, 0(s2)
    addi t2, t2, 1
    sd t2, 0(s2)
    # release
    amoswap.d x0, x0, (s1)
    addi s0, s0, 1
    li t3, PER_HART
    blt s0, t3, outer
    li a0, 0
    li a7, 93
    ecall
"""

PARALLEL_SUM = """
    .equ N, 1024
    .data
    .align 3
arr:    .zero 8192
total:  .dword 0
done:   .dword 0
result: .dword 0
    .text
_start:
    csrr s0, mhartid
    la s1, arr
    # hart 0 initializes, others spin on 'done'
    bnez s0, wait_init
    li t0, 0
    li t1, N
init:
    slli t2, t0, 3
    add t3, s1, t2
    addi t4, t0, 1
    sd t4, 0(t3)         # arr[i] = i+1
    addi t0, t0, 1
    blt t0, t1, init
    la t5, done
    li t6, 1
    amoswap.d x0, t6, (t5)
    j compute
wait_init:
    la t5, done
spin:
    ld t6, 0(t5)
    beqz t6, spin
compute:
    # each hart sums a quarter: [hartid*N/4, (hartid+1)*N/4)
    li t0, N
    srli t0, t0, 2        # N/4
    mul t1, s0, t0        # start
    add t2, t1, t0        # end
    li t3, 0
sum_loop:
    slli t4, t1, 3
    add t5, s1, t4
    ld t6, 0(t5)
    add t3, t3, t6
    addi t1, t1, 1
    blt t1, t2, sum_loop
    la t5, total
    amoadd.d x0, t3, (t5)
    li a0, 0
    li a7, 93
    ecall
"""


class TestAtomics:
    def test_amoadd_counter_exact(self):
        program = assemble(ATOMIC_COUNTER)
        result = run_smp(program, cores=4, interleave=3)
        assert result.all_succeeded
        counter = result.memory.load_int(program.symbol("counter"), 8)
        assert counter == 4 * 200

    def test_lrsc_counter_exact(self):
        program = assemble(LRSC_COUNTER)
        result = run_smp(program, cores=4, interleave=2)
        assert result.all_succeeded
        counter = result.memory.load_int(program.symbol("counter"), 8)
        assert counter == 4 * 100

    def test_lrsc_with_adversarial_interleave(self):
        program = assemble(LRSC_COUNTER)
        for interleave in (1, 5, 17):
            result = run_smp(program, cores=2, interleave=interleave)
            counter = result.memory.load_int(program.symbol("counter"), 8)
            assert counter == 2 * 100, interleave


class TestSpinlock:
    def test_mutual_exclusion(self):
        program = assemble(SPINLOCK)
        result = run_smp(program, cores=4, interleave=7)
        assert result.all_succeeded
        shared = result.memory.load_int(program.symbol("shared"), 8)
        assert shared == 4 * 60
        lock = result.memory.load_int(program.symbol("lock"), 8)
        assert lock == 0  # released


class TestParallelKernel:
    def test_parallel_sum(self):
        program = assemble(PARALLEL_SUM)
        result = run_smp(program, cores=4, interleave=4)
        assert result.all_succeeded
        total = result.memory.load_int(program.symbol("total"), 8)
        assert total == 1024 * 1025 // 2

    def test_single_core_degenerates(self):
        program = assemble(ATOMIC_COUNTER)
        result = run_smp(program, cores=1)
        counter = result.memory.load_int(program.symbol("counter"), 8)
        assert counter == 200


class TestNcore:
    def test_cross_cluster_transfer_costs_more(self):
        system = NcoreSystem(NcoreConfig(
            clusters=2,
            cluster=CoherenceConfig(cores=2, l1_size=4096, l1_assoc=2,
                                    l2_size=65536, l2_assoc=4)))
        system.access(0, 0x1000, True)          # cluster 0 writes
        system.access(1, 0x1000, False)          # same-cluster read
        remote = system.access(2, 0x1000, False)  # other-cluster read
        assert remote > system.config.cross_cluster_latency
        assert system.stats.cross_cluster_transfers >= 1

    def test_write_invalidates_remote_cluster(self):
        system = NcoreSystem(NcoreConfig(clusters=2))
        system.access(0, 0x1000, False)
        system.access(4, 0x1000, False)   # core 4 = cluster 1
        system.access(0, 0x1000, True)
        from repro.mem.cache import LineState

        assert system.clusters[1].state_of(0, 0x1000) is LineState.INVALID

    def test_core_count(self):
        system = NcoreSystem(NcoreConfig(
            clusters=4, cluster=CoherenceConfig(cores=4)))
        assert system.total_cores == 16  # the paper's 16-core XT-910

    def test_cluster_limits(self):
        with pytest.raises(ValueError):
            NcoreSystem(NcoreConfig(clusters=5))
