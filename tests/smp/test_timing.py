"""Multi-core timing tests: scaling, sharing costs."""

import pytest

from repro.asm import assemble
from repro.smp.timing import run_smp_timing


def parallel_work(n_per_hart: int = 2000) -> str:
    """Embarrassingly parallel per-hart compute on private regions."""
    return f"""
    .text
_start:
    csrr s0, mhartid
    li t0, 0x100000
    slli t1, s0, 16          # 64 KiB private region per hart
    add s1, t0, t1
    li s2, {n_per_hart}
loop:
    andi t2, s2, 0x3FF
    slli t3, t2, 3
    add t3, s1, t3
    ld t4, 0(t3)
    addi t4, t4, 1
    sd t4, 0(t3)
    addi s2, s2, -1
    bnez s2, loop
    li a0, 0
    li a7, 93
    ecall
"""


SHARED_COUNTER = """
    .data
    .align 3
counter: .dword 0
    .text
_start:
    la s1, counter
    li s2, 300
loop:
    li t0, 1
    amoadd.d x0, t0, (s1)
    addi s2, s2, -1
    bnez s2, loop
    li a0, 0
    li a7, 93
    ecall
"""


class TestScaling:
    def test_parallel_speedup(self):
        program = assemble(parallel_work(), compress=True)
        single = run_smp_timing(program, cores=1)
        quad = run_smp_timing(program, cores=4)
        assert all(code == 0 for code in quad.exit_codes)
        # Same per-hart work: the quad makespan stays close to the
        # single-core time (mild contention), i.e. ~4x the throughput.
        assert quad.makespan < single.makespan * 1.5
        assert quad.total_instructions \
            == 4 * single.total_instructions

    def test_two_core_intermediate(self):
        program = assemble(parallel_work(1000), compress=True)
        one = run_smp_timing(program, cores=1)
        two = run_smp_timing(program, cores=2)
        assert two.makespan < one.makespan * 1.5


class TestSharing:
    def test_shared_counter_invalidations(self):
        program = assemble(SHARED_COUNTER, compress=True)
        result = run_smp_timing(program, cores=4)
        assert all(code == 0 for code in result.exit_codes)
        # Every hart's AMO bounces the counter line around (the chunked
        # clock interleaving coalesces some of the ping-pong).
        assert result.coherence.sharing_invalidations > 50

    def test_private_work_no_sharing(self):
        program = assemble(parallel_work(500), compress=True)
        result = run_smp_timing(program, cores=4)
        assert result.coherence.sharing_invalidations == 0

    def test_sharing_costs_cycles(self):
        shared = run_smp_timing(assemble(SHARED_COUNTER, compress=True),
                                cores=4)
        assert shared.coherence.snoop_stall_cycles > 0


class TestResultShape:
    def test_speedup_helper(self):
        program = assemble(parallel_work(500), compress=True)
        result = run_smp_timing(program, cores=2)
        assert result.speedup_vs(result.makespan * 2) == pytest.approx(2.0)

    def test_per_core_stats_populated(self):
        program = assemble(parallel_work(500), compress=True)
        result = run_smp_timing(program, cores=2)
        assert len(result.per_core) == 2
        for stats in result.per_core:
            assert stats.instructions > 0
            assert stats.cycles > 0
