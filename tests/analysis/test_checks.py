"""Negative checker tests: each seeded defect produces exactly the
expected finding, with source-line provenance."""

from repro.analysis import lint_source

EXIT = "    li a0, 0\n    li a7, 93\n    ecall\n"


def findings_of(source, check=None):
    report = lint_source(source)
    if check is None:
        return report.findings
    return [f for f in report.findings if f.check == check]


class TestUninitRead:
    SOURCE = """
_start:
    li t0, 3
    add t1, t0, t2
""" + EXIT

    def test_exactly_one_finding(self):
        findings = findings_of(self.SOURCE)
        assert len(findings) == 1
        f = findings[0]
        assert f.check == "uninit-read"
        assert f.extra == "t2"
        assert f.line == 4
        assert "add t1, t0, t2" in f.source

    def test_branch_merge_is_maybe(self):
        source = """
_start:
    li t0, 1
    beqz t0, merge
    li t3, 9
merge:
    add t4, t3, t0
""" + EXIT
        findings = findings_of(source, "uninit-read")
        assert [f.extra for f in findings] == ["t3"]

    def test_both_paths_init_is_clean(self):
        source = """
_start:
    li t0, 1
    beqz t0, other
    li t3, 9
    j merge
other:
    li t3, 8
merge:
    add t4, t3, t0
""" + EXIT
        assert findings_of(source, "uninit-read") == []


class TestVectorConfig:
    def test_missing_vsetvl(self):
        source = """
_start:
    vadd.vv v1, v2, v3
""" + EXIT
        findings = findings_of(source, "vector-no-vsetvl")
        assert len(findings) == 1
        assert findings[0].severity == "error"
        assert findings[0].line == 3
        assert "vadd.vv" in findings[0].source

    def test_dominating_vsetvl_is_clean(self):
        source = """
_start:
    li t0, 8
    vsetvli t1, t0, e32, m1
    vmv.v.i v2, 1
    vmv.v.i v3, 2
    vadd.vv v1, v2, v3
""" + EXIT
        assert findings_of(source, "vector-no-vsetvl") == []

    def test_reconfig_live_register(self):
        source = """
_start:
    li t0, 8
    vsetvli t1, t0, e16, m1
    vmv.v.i v2, 1
    vsetvli t1, t0, e32, m1
    vadd.vv v4, v2, v2
    vsetvli t1, t0, e16, m1
""" + EXIT
        findings = findings_of(source, "vreconfig-live")
        assert [f.extra for f in findings] == ["v2"]
        assert findings[0].line == 6


class TestCalleeSaved:
    def test_clobber_without_save(self):
        source = """
_start:
    jal ra, victim
""" + EXIT + """
victim:
    li s1, 42
    jalr x0, 0(ra)
"""
        findings = findings_of(source, "callee-clobber")
        assert len(findings) == 1
        f = findings[0]
        assert f.extra == "s1"
        assert f.function == "victim"
        assert "li s1, 42" in f.source

    def test_save_restore_is_clean(self):
        source = """
_start:
    jal ra, good
""" + EXIT + """
good:
    addi sp, sp, -16
    sd s1, 0(sp)
    li s1, 42
    ld s1, 0(sp)
    addi sp, sp, 16
    jalr x0, 0(ra)
"""
        assert findings_of(source, "callee-clobber") == []

    def test_entry_function_exempt(self):
        source = """
_start:
    li s1, 42
""" + EXIT
        assert findings_of(source, "callee-clobber") == []


class TestStackBalance:
    def test_unbalanced_return(self):
        source = """
_start:
    jal ra, leaky
""" + EXIT + """
leaky:
    addi sp, sp, -32
    addi sp, sp, 16
    jalr x0, 0(ra)
"""
        findings = findings_of(source, "stack-imbalance")
        assert len(findings) == 1
        assert findings[0].severity == "error"
        assert "-0x10" in findings[0].message
        assert "jalr" in findings[0].source

    def test_balanced_is_clean(self):
        source = """
_start:
    jal ra, tidy
""" + EXIT + """
tidy:
    addi sp, sp, -32
    addi sp, sp, 32
    jalr x0, 0(ra)
"""
        assert findings_of(source, "stack-imbalance") == []

    def test_untracked_sp_write(self):
        source = """
_start:
    li sp, 4096
""" + EXIT
        findings = findings_of(source, "sp-untracked")
        assert len(findings) == 1


class TestLrSc:
    def test_unpaired_lr(self):
        source = """
_start:
    la t0, word
    lr.w t1, (t0)
""" + EXIT + """
    .data
word: .word 0
"""
        findings = findings_of(source, "lrsc-unpaired")
        assert len(findings) == 1
        assert "lr.w" in findings[0].message
        assert "sc.w" in findings[0].message

    def test_paired_is_clean(self):
        source = """
_start:
    la t0, word
retry:
    lr.w t1, (t0)
    addi t1, t1, 1
    sc.w t2, t1, (t0)
    bnez t2, retry
""" + EXIT + """
    .data
word: .word 0
"""
        report = lint_source(source)
        assert [f for f in report.findings
                if f.check.startswith("lrsc")] == []

    def test_orphan_sc(self):
        source = """
_start:
    la t0, word
    li t1, 1
    sc.w t2, t1, (t0)
""" + EXIT + """
    .data
word: .word 0
"""
        findings = findings_of(source, "lrsc-orphan-sc")
        assert len(findings) == 1

    def test_intervening_store_breaks_progress(self):
        source = """
_start:
    la t0, word
    la t3, other
    lr.w t1, (t0)
    sw t1, 0(t3)
    sc.w t2, t1, (t0)
""" + EXIT + """
    .data
word: .word 0
other: .word 0
"""
        findings = findings_of(source, "lrsc-progress")
        assert len(findings) == 1
        assert "sw" in findings[0].message


class TestMemory:
    def test_wild_address(self):
        source = """
_start:
    li t0, 64
    ld t1, 0(t0)
""" + EXIT
        findings = findings_of(source, "mem-wild")
        assert len(findings) == 1
        assert findings[0].severity == "error"
        assert "0x40" in findings[0].message

    def test_misaligned_static_address(self):
        source = """
_start:
    la t0, word
    ld t1, 3(t0)
""" + EXIT + """
    .data
    .align 8
word: .dword 0
"""
        findings = findings_of(source, "mem-misaligned")
        assert len(findings) == 1

    def test_store_to_text(self):
        source = """
_start:
    la t0, _start
    sd x0, 0(t0)
""" + EXIT
        findings = findings_of(source, "store-to-text")
        assert len(findings) == 1

    def test_valid_data_access_clean(self):
        source = """
_start:
    la t0, word
    ld t1, 0(t0)
""" + EXIT + """
    .data
    .align 8
word: .dword 7
"""
        report = lint_source(source)
        assert [f for f in report.findings
                if f.check.startswith("mem")] == []


class TestUnreachable:
    def test_dead_block_flagged(self):
        source = """
_start:
""" + EXIT + """
dead:
    li t0, 1
    j dead
"""
        findings = findings_of(source, "unreachable-code")
        assert len(findings) == 1
        assert findings[0].severity == "info"


class TestProvenance:
    def test_all_findings_carry_line_and_source(self):
        source = """
_start:
    add t1, t0, t2
    vadd.vv v1, v2, v3
""" + EXIT
        for finding in findings_of(source):
            assert finding.line > 0
            assert finding.source
            assert finding.key.count(":") >= 3
