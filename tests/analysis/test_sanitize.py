"""Runtime sanitizer: shadow init state + shadow call stack on the
block-cache path, with zero effect on unsanitized runs."""

import pytest

from repro.analysis import Sanitizer, SanitizerViolation
from repro.asm import assemble
from repro.harness.runner import run_on_core
from repro.sim.emulator import Emulator
from repro.uarch.core import PipelineModel
from repro.uarch.presets import get_preset
from repro.workloads import dhrystone, vec_mac16

EXIT = "    li a0, 0\n    li a7, 93\n    ecall\n"


def sanitized_run(source, strict=True, **kwargs):
    program = assemble(source)
    emulator = Emulator(program, **kwargs)
    emulator.sanitizer = Sanitizer(program, strict=strict)
    code = emulator.run_fast()
    return emulator, code


class TestCleanRuns:
    def test_simple_program_clean(self):
        emulator, code = sanitized_run("""
_start:
    li t0, 5
    li t1, 7
    add t2, t0, t1
""" + EXIT)
        assert code == 0
        assert emulator.sanitizer.violations == []
        assert emulator.sanitizer.blocks_checked > 0

    @pytest.mark.parametrize("workload", [dhrystone, vec_mac16])
    def test_workloads_clean(self, workload):
        w = workload()
        program = w.program()
        emulator = Emulator(program)
        emulator.sanitizer = Sanitizer(program)
        assert emulator.run_fast() == 0
        assert emulator.sanitizer.violations == []

    def test_call_stack_tracked(self):
        emulator, code = sanitized_run("""
_start:
    li a0, 1
    jal ra, outer
""" + EXIT + """
outer:
    addi sp, sp, -16
    sd ra, 0(sp)
    jal ra, inner
    ld ra, 0(sp)
    addi sp, sp, 16
    jalr x0, 0(ra)
inner:
    addi a0, a0, 1
    jalr x0, 0(ra)
""")
        assert code == 0
        assert emulator.sanitizer.max_depth == 2
        assert emulator.sanitizer.call_stack == []


class TestSeededViolations:
    def test_runtime_uninit_read(self):
        with pytest.raises(SanitizerViolation) as exc:
            sanitized_run("""
_start:
    add t1, t0, t2
""" + EXIT)
        violation = exc.value.violation
        assert violation.kind == "uninit-read"
        assert violation.line == 3
        assert "add t1, t0, t2" in violation.source

    def test_runtime_vector_without_vsetvl(self):
        with pytest.raises(SanitizerViolation) as exc:
            sanitized_run("""
_start:
    vmv.v.i v1, 3
""" + EXIT)
        assert exc.value.violation.kind == "vector-no-vsetvl"

    def test_runtime_stack_imbalance(self):
        with pytest.raises(SanitizerViolation) as exc:
            sanitized_run("""
_start:
    jal ra, leaky
""" + EXIT + """
leaky:
    addi sp, sp, -16
    jalr x0, 0(ra)
""")
        violation = exc.value.violation
        assert violation.kind == "stack-imbalance"
        assert "-0x10" in violation.message

    def test_runtime_return_target_corruption(self):
        with pytest.raises(SanitizerViolation) as exc:
            sanitized_run("""
_start:
    jal ra, hijack
""" + EXIT + """
hijack:
    la ra, elsewhere
    jalr x0, 0(ra)
elsewhere:
""" + EXIT)
        assert exc.value.violation.kind == "return-target"

    def test_return_without_call(self):
        with pytest.raises(SanitizerViolation) as exc:
            sanitized_run("""
_start:
    la ra, out
    jalr x0, 0(ra)
out:
""" + EXIT)
        assert exc.value.violation.kind == "stack-underflow"

    def test_non_strict_collects(self):
        emulator, code = sanitized_run("""
_start:
    add t1, t0, t2
    add t3, t0, t2
""" + EXIT, strict=False)
        assert code == 0
        kinds = [v.kind for v in emulator.sanitizer.violations]
        assert kinds.count("uninit-read") >= 2

    def test_violation_dict_shape(self):
        emulator, _ = sanitized_run("""
_start:
    add t1, t0, t2
""" + EXIT, strict=False)
        payload = emulator.sanitizer.violations[0].to_dict()
        assert set(payload) == {"kind", "pc", "line", "message",
                                "detail", "source"}


class TestZeroPerturbation:
    """With and without a sanitizer attached, architectural results and
    timing statistics are identical; with it detached, the fast loops
    skip the hooks entirely."""

    def test_archstate_identical(self):
        program = dhrystone().program()
        plain = Emulator(program)
        plain.run_fast()
        checked = Emulator(program)
        checked.sanitizer = Sanitizer(program)
        checked.run_fast()
        assert plain.state.instret == checked.state.instret
        assert list(plain.state.regs) == list(checked.state.regs)
        assert plain.exit_code == checked.exit_code

    def test_corestats_bit_identical(self):
        program = dhrystone().program()
        baseline = run_on_core(program, "xt910").stats

        emulator = Emulator(program)
        emulator.sanitizer = Sanitizer(program)
        pipeline = PipelineModel(get_preset("xt910"))
        stats = pipeline.run(emulator.fast_trace())
        assert emulator.sanitizer.blocks_checked > 0
        assert stats.as_comparable() == baseline.as_comparable()
