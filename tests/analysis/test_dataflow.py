"""Dataflow passes: definite init, liveness, reaching definitions."""

from repro.analysis import build_cfg
from repro.analysis.dataflow import (
    ALL_BITS,
    ENTRY_MASK,
    V_BASE,
    VCONFIG_BIT,
    bit_name,
    def_mask,
    liveness,
    must_init,
    reaching_definitions,
    use_mask,
)
from repro.asm import assemble
from repro.isa.registers import Reg


def cfg_of(source):
    return build_cfg(assemble(source))


BRANCHY = """
_start:
    li t0, 1
    beqz t0, skip
    li t1, 5
skip:
    add t2, t1, t0
    li a7, 93
    ecall
"""

INTERPROC = """
_start:
    li s0, 7
    jal ra, helper
    add t3, s0, a0
    li a7, 93
    ecall
helper:
    li t2, 2
    add a0, t2, t2
    jalr x0, 0(ra)
"""


class TestMasks:
    def test_use_def_masks(self):
        program = assemble("_start:\n  add t2, t0, t1\n  li a7, 93\n"
                           "  ecall\n")
        cfg = build_cfg(program)
        add = cfg.blocks[cfg.entry].insts[0].inst
        assert use_mask(add) == (1 << 5) | (1 << 6)   # t0, t1
        assert def_mask(add) == 1 << 7                # t2

    def test_ecall_defines_a0(self):
        program = assemble("_start:\n  li a7, 93\n  ecall\n")
        cfg = build_cfg(program)
        ecall = cfg.blocks[cfg.entry].insts[-1].inst
        assert def_mask(ecall) & (1 << 10)

    def test_vsetvli_sets_vconfig(self):
        program = assemble("_start:\n  li t0, 8\n"
                           "  vsetvli t1, t0, e32, m1\n"
                           "  li a7, 93\n  ecall\n")
        cfg = build_cfg(program)
        vset = cfg.blocks[cfg.entry].insts[1].inst
        assert def_mask(vset) & (1 << VCONFIG_BIT)

    def test_bit_names(self):
        assert bit_name(2) == "sp"
        assert bit_name(32 + 1) == "ft1"
        assert bit_name(V_BASE + 3) == "v3"
        assert bit_name(VCONFIG_BIT) == "vconfig"

    def test_reg_bit_roundtrip(self):
        from repro.analysis.dataflow import reg_bit

        assert reg_bit(Reg("x", 5)) == 5
        assert reg_bit(Reg("f", 5)) == 37
        assert reg_bit(Reg("v", 5)) == 69


class TestMustInit:
    def test_maybe_uninit_on_one_path(self):
        cfg = cfg_of(BRANCHY)
        state = must_init(cfg)
        skip = cfg.program.symbol("skip")
        # t1 (bit 6) only written on the fall-through path
        assert not state[skip] & (1 << 6)
        # t0 (bit 5) written before the branch on every path
        assert state[skip] & (1 << 5)

    def test_entry_mask_seeds_sp_gp(self):
        cfg = cfg_of(BRANCHY)
        state = must_init(cfg)
        assert state[cfg.entry] == ENTRY_MASK
        assert ENTRY_MASK & (1 << 2) and ENTRY_MASK & (1 << 3)

    def test_interprocedural_flow(self):
        cfg = cfg_of(INTERPROC)
        state = must_init(cfg)
        helper = cfg.program.symbol("helper")
        # s0, set before the call, is definite at the callee entry
        assert state[helper] & (1 << 8)
        # the call fall-through sees a0 defined by the callee
        call_block = cfg.blocks[cfg.entry]
        fall = call_block.end
        assert state[fall] & (1 << 10)
        assert state[fall] & (1 << 8)

    def test_unreachable_stays_top(self):
        cfg = cfg_of("""
_start:
    li a7, 93
    ecall
dead:
    add t0, t1, t2
    j dead
""")
        state = must_init(cfg)
        dead = cfg.program.symbol("dead")
        assert state[dead] == ALL_BITS


class TestLiveness:
    def test_loop_carried_liveness(self):
        cfg = cfg_of("""
_start:
    li t0, 10
    li t1, 0
loop:
    add t1, t1, t0
    addi t0, t0, -1
    bnez t0, loop
    li a7, 93
    ecall
""")
        func = cfg.functions[cfg.entry]
        live_in, live_out = liveness(cfg, func)
        loop = cfg.program.symbol("loop")
        # t0 and t1 are live around the back edge
        assert live_in[loop] & (1 << 5)
        assert live_in[loop] & (1 << 6)
        assert live_out[loop] & (1 << 5)

    def test_dead_def_not_live(self):
        cfg = cfg_of(BRANCHY)
        func = cfg.functions[cfg.entry]
        live_in, _ = liveness(cfg, func)
        skip = cfg.program.symbol("skip")
        # t2 is written at skip but never read: dead everywhere
        assert not live_in[cfg.entry] & (1 << 7)
        assert live_in[skip] & (1 << 6)  # t1 read at skip


class TestReachingDefs:
    def test_def_use_chains(self):
        cfg = cfg_of(BRANCHY)
        func = cfg.functions[cfg.entry]
        rd = reaching_definitions(cfg, func)
        skip = cfg.program.symbol("skip")
        add = cfg.blocks[skip].insts[0]
        # the add's t1 operand has exactly one reaching def (the li)
        per_bit = rd.use_defs[add.addr]
        assert len(per_bit[6]) == 1
        li_t1_addr = per_bit[6][0]
        assert add.addr in rd.def_uses[li_t1_addr]

    def test_loop_merges_two_defs(self):
        cfg = cfg_of("""
_start:
    li t0, 10
loop:
    addi t0, t0, -1
    bnez t0, loop
    li a7, 93
    ecall
""")
        func = cfg.functions[cfg.entry]
        rd = reaching_definitions(cfg, func)
        loop = cfg.program.symbol("loop")
        addi = cfg.blocks[loop].insts[0]
        # both the initial li and the loop addi reach the addi's read
        assert len(rd.use_defs[addi.addr][5]) == 2
