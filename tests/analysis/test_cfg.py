"""CFG recovery: blocks, edges, functions, dominators, jump tables."""

from repro.analysis import build_cfg
from repro.analysis.cfg import (
    KIND_BRANCH,
    KIND_CALL,
    KIND_EXIT,
    KIND_INDIRECT,
    KIND_JUMP,
    KIND_RET,
)
from repro.asm import assemble
from repro.workloads import dhrystone

LOOP = """
_start:
    li t0, 10
    li t1, 0
loop:
    add t1, t1, t0
    addi t0, t0, -1
    bnez t0, loop
    li a0, 0
    li a7, 93
    ecall
"""

CALLS = """
_start:
    li a0, 3
    jal ra, double
    jal ra, double
    li a7, 93
    ecall
double:
    add a0, a0, a0
    jalr x0, 0(ra)
dead:
    li t5, 1
    j dead
"""

JUMP_TABLE = """
_start:
    li t0, 1
    la t1, table
    slli t0, t0, 3
    add t1, t1, t0
    ld t2, 0(t1)
    jr t2
case0:
    li a0, 0
    j done
case1:
    li a0, 1
done:
    li a7, 93
    ecall
    .data
table:
    .dword case0
    .dword case1
"""


def cfg_of(source, compress=True):
    return build_cfg(assemble(source, compress=compress))


class TestBlocks:
    def test_loop_structure(self):
        cfg = cfg_of(LOOP)
        kinds = [cfg.blocks[s].kind for s in cfg.order]
        assert kinds == ["fall", KIND_BRANCH, KIND_EXIT]
        entry, loop, exit_ = cfg.order
        assert cfg.blocks[entry].succs == [loop]
        # branch: target first, then fall-through
        assert set(cfg.blocks[loop].succs) == {loop, exit_}
        assert cfg.blocks[exit_].succs == []

    def test_every_instruction_in_exactly_one_block(self):
        from repro.isa.classify import iter_text

        cfg = cfg_of(LOOP)
        seen = set()
        for start in cfg.order:
            for di in cfg.blocks[start].insts:
                assert di.addr not in seen
                seen.add(di.addr)
        decoded = {di.addr for di in iter_text(cfg.program)}
        assert seen == decoded

    def test_preds_mirror_succs(self):
        cfg = cfg_of(CALLS)
        for start in cfg.order:
            for succ in cfg.blocks[start].succs:
                assert start in cfg.blocks[succ].preds


class TestCallsAndFunctions:
    def test_call_blocks_record_target(self):
        cfg = cfg_of(CALLS)
        program = cfg.program
        double = program.symbol("double")
        call_blocks = [cfg.blocks[s] for s in cfg.order
                       if cfg.blocks[s].kind == KIND_CALL]
        assert len(call_blocks) == 2
        assert all(b.call_target == double for b in call_blocks)
        # intra-procedural successor is the fall-through, not the callee
        for block in call_blocks:
            assert block.succs == [block.end]

    def test_function_partitioning(self):
        cfg = cfg_of(CALLS)
        program = cfg.program
        assert set(cfg.functions) == {program.entry,
                                      program.symbol("double")}
        double = cfg.functions[program.symbol("double")]
        assert double.name == "double"
        assert len(double.rets) == 1
        assert cfg.blocks[double.rets[0]].kind == KIND_RET

    def test_callers_map(self):
        cfg = cfg_of(CALLS)
        double = cfg.program.symbol("double")
        assert len(cfg.callers[double]) == 2

    def test_super_succs_route_through_callee(self):
        cfg = cfg_of(CALLS)
        double = cfg.program.symbol("double")
        call_sites = cfg.callers[double]
        first_call = cfg.blocks[min(call_sites)]
        assert cfg.super_succs(first_call) == [double]
        ret_block = cfg.blocks[cfg.functions[double].rets[0]]
        returns_to = cfg.super_succs(ret_block)
        assert sorted(returns_to) == sorted(
            cfg.blocks[s].end for s in call_sites)

    def test_unreachable_detection(self):
        cfg = cfg_of(CALLS)
        dead = cfg.program.symbol("dead")
        assert dead in cfg.unreachable
        assert cfg.program.entry not in cfg.unreachable

    def test_exit_ecall_has_no_successors(self):
        cfg = cfg_of(CALLS)
        exits = [s for s in cfg.order if cfg.blocks[s].kind == KIND_EXIT]
        assert len(exits) == 1
        assert cfg.blocks[exits[0]].succs == []


class TestJumpTables:
    def test_indirect_targets_recovered_from_data(self):
        cfg = cfg_of(JUMP_TABLE)
        program = cfg.program
        case0, case1 = program.symbol("case0"), program.symbol("case1")
        indirect = [cfg.blocks[s] for s in cfg.order
                    if cfg.blocks[s].kind == KIND_INDIRECT]
        assert len(indirect) == 1
        assert set(indirect[0].succs) >= {case0, case1}

    def test_cases_not_unreachable(self):
        cfg = cfg_of(JUMP_TABLE)
        program = cfg.program
        assert program.symbol("case0") not in cfg.unreachable
        assert program.symbol("case1") not in cfg.unreachable


class TestDominators:
    def test_loop_dominators(self):
        cfg = cfg_of(LOOP)
        entry, loop, exit_ = cfg.order
        func = cfg.functions[cfg.entry]
        assert func.idom[loop] == entry
        assert func.idom[exit_] == loop
        assert func.dominates(entry, exit_)
        assert not func.dominates(exit_, loop)

    def test_diamond_join_dominated_by_branch(self):
        cfg = cfg_of(JUMP_TABLE)
        program = cfg.program
        func = cfg.functions[cfg.entry]
        done = program.symbol("done")
        indirect = [s for s in cfg.order
                    if cfg.blocks[s].kind == KIND_INDIRECT][0]
        # neither case dominates the join; the dispatch block does
        assert func.dominates(indirect, done)
        assert not func.dominates(program.symbol("case0"), done)


class TestRealWorkload:
    def test_dhrystone_cfg(self):
        cfg = build_cfg(dhrystone().program())
        # _start plus the three callees
        assert len(cfg.functions) == 4
        names = {f.name for f in cfg.functions.values()}
        assert {"copy_record", "str_cmp", "proc_add"} <= names
        assert cfg.unreachable == []
        # every non-entry function returns
        for entry, func in cfg.functions.items():
            if entry != cfg.entry:
                assert func.rets

    def test_jump_kind_present_in_dhrystone(self):
        cfg = build_cfg(dhrystone().program())
        kinds = {cfg.blocks[s].kind for s in cfg.order}
        assert KIND_INDIRECT in kinds  # the switch jump table
        assert KIND_JUMP in kinds
        assert KIND_RET in kinds
