"""Lint driver + baseline workflow over the bundled workloads.

The committed ``lint_baseline.json`` is the acceptance record: every
workload must lint with zero findings outside it.
"""

import json

from repro.analysis import (
    compare_to_baseline,
    lint_source,
    lint_workloads,
    load_baseline,
    save_baseline,
)
from repro.analysis.lint import DEFAULT_BASELINE


class TestWorkloadsAgainstBaseline:
    def test_all_workloads_covered_by_baseline(self):
        reports = lint_workloads()
        assert len(reports) == 39
        baseline = load_baseline()
        new, stale = compare_to_baseline(reports, baseline)
        assert new == [], [f"{n}: {f.render()}" for n, f in new]
        assert stale == []

    def test_baseline_is_committed_and_versioned(self):
        assert DEFAULT_BASELINE.exists()
        payload = json.loads(DEFAULT_BASELINE.read_text())
        assert payload["version"] == 1
        # the accepted findings are the vec-mac16 widening-MAC idiom
        assert set(payload["programs"]) == {"vec-mac16"}
        assert all(key.startswith("vreconfig-live:")
                   for key in payload["programs"]["vec-mac16"])

    def test_no_error_severity_findings_anywhere(self):
        for report in lint_workloads():
            errors = [f for f in report.findings
                      if f.severity == "error"]
            assert errors == [], report.name


class TestBaselineWorkflow:
    def test_save_load_roundtrip(self, tmp_path):
        report = lint_source("""
_start:
    add t1, t0, t2
    li a7, 93
    ecall
""", name="seeded")
        path = tmp_path / "baseline.json"
        save_baseline([report], path)
        assert load_baseline(path) == {"seeded": report.keys}

    def test_compare_flags_new_and_stale(self):
        report = lint_source("""
_start:
    add t1, t0, t2
    li a7, 93
    ecall
""", name="prog")
        # empty baseline: everything is new
        new, stale = compare_to_baseline([report], {})
        assert [f.key for _, f in new] == report.keys
        # baseline with an extra key: it comes back stale
        baseline = {"prog": report.keys + ["uninit-read:_start:99:t9"],
                    "gone": ["uninit-read:_start:1:t0"]}
        new, stale = compare_to_baseline([report], baseline)
        assert new == []
        assert ("prog", "uninit-read:_start:99:t9") in stale
        assert ("gone", "uninit-read:_start:1:t0") in stale

    def test_missing_baseline_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "absent.json") == {}

    def test_keys_are_line_stable_not_addr_stable(self):
        base = """
_start:
    li t0, 1
    add t1, t0, t2
    li a7, 93
    ecall
"""
        shifted = base.replace("_start:\n", "_start:\n    nop\n    nop\n")
        keys_a = lint_source(base, name="p").keys
        keys_b = lint_source(shifted, name="p").keys
        # two extra instructions move the address but not the check/
        # register identity; only the line number may differ
        assert len(keys_a) == len(keys_b) == 1
        assert keys_a[0].split(":")[0] == keys_b[0].split(":")[0]
        assert keys_a[0].rsplit(":", 1)[1] == keys_b[0].rsplit(":", 1)[1]


class TestReportShape:
    def test_report_json_shape(self):
        report = lint_source("""
_start:
    vadd.vv v1, v2, v3
    li a7, 93
    ecall
""", name="vec")
        payload = report.to_dict()
        assert payload["name"] == "vec"
        assert payload["blocks"] >= 1
        assert payload["functions"] == 1
        for finding in payload["findings"]:
            assert {"check", "severity", "function", "addr", "line",
                    "message", "extra", "source", "key"} <= set(finding)

    def test_worst_severity(self):
        clean = lint_source("_start:\n    li a7, 93\n    ecall\n")
        assert clean.worst_severity() is None
        bad = lint_source("""
_start:
    vadd.vv v1, v2, v3
    li a7, 93
    ecall
""")
        assert bad.worst_severity() == "error"
