"""Assembler tests: syntax, pseudo-ops, data directives, relaxation."""

import struct

import pytest

from repro.asm import AssemblerError, assemble
from repro.asm.assembler import _li_sequence, decode_vtype, encode_vtype
from repro.isa.encoding import decode_word


def first_word(program):
    return struct.unpack_from("<I", program.text, 0)[0]


def decode_all(program):
    """Decode the text section back into instructions."""
    from repro.isa import compressed

    out = []
    pos = 0
    while pos < len(program.text):
        half = struct.unpack_from("<H", program.text, pos)[0]
        if compressed.is_compressed(half):
            out.append(compressed.expand(half))
            pos += 2
        else:
            word = struct.unpack_from("<I", program.text, pos)[0]
            out.append(decode_word(word))
            pos += 4
    return out


class TestBasics:
    def test_simple_add(self):
        prog = assemble(".text\nadd a0, a1, a2\n")
        inst = decode_word(first_word(prog))
        assert (inst.mnemonic, inst.rd, inst.rs1, inst.rs2) == \
            ("add", 10, 11, 12)

    def test_default_section_is_text(self):
        prog = assemble("addi a0, a0, 1\n")
        assert decode_word(first_word(prog)).mnemonic == "addi"

    def test_memory_operands(self):
        prog = assemble("lw t0, -12(sp)\nsd s1, 16(a0)\n")
        insts = decode_all(prog)
        assert (insts[0].mnemonic, insts[0].rs1, insts[0].imm) == \
            ("lw", 2, -12)
        assert (insts[1].mnemonic, insts[1].rs2, insts[1].imm) == \
            ("sd", 9, 16)

    def test_labels_and_branches(self):
        prog = assemble("""
        top:
            addi a0, a0, -1
            bnez a0, top
            beq a0, a1, next
        next:
            nop
        """)
        insts = decode_all(prog)
        assert insts[1].imm == -4      # back to top
        assert insts[2].imm == 4       # forward to next

    def test_label_on_same_line(self):
        prog = assemble("loop: addi a0, a0, 1\nj loop\n")
        insts = decode_all(prog)
        assert insts[1].imm == -4

    def test_comments(self):
        prog = assemble("add a0, a1, a2  # comment\n// full line\nnop\n")
        assert len(decode_all(prog)) == 2

    def test_unknown_mnemonic_reports_line(self):
        with pytest.raises(AssemblerError, match="line 2"):
            assemble("nop\nbogus a0, a1\n")

    def test_bad_register(self):
        with pytest.raises(AssemblerError):
            assemble("add a0, q7, a2\n")


class TestPseudoInstructions:
    def test_li_small(self):
        insts = decode_all(assemble("li a0, 42\n"))
        assert (insts[0].mnemonic, insts[0].imm) == ("addi", 42)

    def test_li_32bit(self):
        insts = decode_all(assemble("li a0, 0x12345678\n"))
        assert [i.mnemonic for i in insts] == ["lui", "addiw"]

    def test_li_negative(self):
        insts = decode_all(assemble("li a0, -1\n"))
        assert (insts[0].mnemonic, insts[0].imm) == ("addi", -1)

    def test_li_64bit_sequences(self):
        for value in (0x1234_5678_9ABC_DEF0, -0x7FFF_FFFF_FFFF_0001,
                      1 << 62, (1 << 63) - 1):
            seq = _li_sequence(5, value)
            # emulate the sequence
            reg = 0
            for mn, src, imm in seq:
                if mn == "lui":
                    imm20 = imm if imm < (1 << 19) else imm - (1 << 20)
                    reg = (imm20 << 12) & ((1 << 64) - 1)
                elif mn == "addi":
                    base = 0 if src == 0 else reg
                    reg = (base + imm) & ((1 << 64) - 1)
                elif mn == "addiw":
                    base = 0 if src == 0 else reg
                    reg = (base + imm) & 0xFFFFFFFF
                    if reg >= 1 << 31:
                        reg |= ~0xFFFFFFFF & ((1 << 64) - 1)
                elif mn == "slli":
                    reg = (reg << imm) & ((1 << 64) - 1)
            assert reg == value & ((1 << 64) - 1), hex(value)

    def test_la(self):
        prog = assemble(".data\nx: .word 7\n.text\nla a0, x\n")
        insts = decode_all(prog)
        assert [i.mnemonic for i in insts] == ["lui", "addi"]

    def test_branch_aliases(self):
        prog = assemble("""
        top:
            beqz a0, top
            bnez a1, top
            bgt a2, a3, top
            ble a4, a5, top
        """)
        insts = decode_all(prog)
        assert [i.mnemonic for i in insts] == ["beq", "bne", "blt", "bge"]
        # bgt swaps operands
        assert (insts[2].rs1, insts[2].rs2) == (13, 12)

    def test_call_ret(self):
        prog = assemble("""
        _start:
            call fn
            j end
        fn:
            ret
        end:
            nop
        """)
        insts = decode_all(prog)
        assert insts[0].mnemonic == "jal" and insts[0].rd == 1
        assert insts[2].mnemonic == "jalr" and insts[2].rs1 == 1

    def test_csr_pseudo(self):
        prog = assemble("csrr a0, mhartid\ncsrw mtvec, a1\n")
        insts = decode_all(prog)
        assert insts[0].mnemonic == "csrrs"
        assert insts[0].imm == 0xF14
        assert insts[1].mnemonic == "csrrw"
        assert insts[1].imm == 0x305

    def test_not_neg(self):
        insts = decode_all(assemble("not a0, a1\nneg a2, a3\n"))
        assert insts[0].mnemonic == "xori" and insts[0].imm == -1
        assert insts[1].mnemonic == "sub" and insts[1].rs1 == 0


class TestDataDirectives:
    def test_word_data(self):
        prog = assemble(".data\nvals: .word 1, -2, 3\n")
        assert struct.unpack_from("<3i", prog.data, 0) == (1, -2, 3)

    def test_all_widths(self):
        prog = assemble(
            ".data\n.byte 1\n.half 2\n.align 2\n.word 3\n.dword 4\n")
        assert prog.data[0] == 1

    def test_zero_fill(self):
        prog = assemble(".data\nbuf: .zero 16\ntail: .word 9\n")
        assert prog.symbol("tail") - prog.symbol("buf") == 16

    def test_strings(self):
        prog = assemble('.data\ns: .asciz "ab\\n"\n')
        assert prog.data[:4] == b"ab\n\x00"

    def test_align(self):
        prog = assemble(".data\n.byte 1\n.align 3\nv: .dword 2\n")
        assert prog.symbol("v") % 8 == 0

    def test_float_double(self):
        prog = assemble(".data\nf: .float 1.5\nd: .double -2.25\n")
        assert struct.unpack_from("<f", prog.data, 0)[0] == 1.5
        assert struct.unpack_from("<d", prog.data, 4)[0] == -2.25

    def test_equ(self):
        prog = assemble(".equ N, 10\nli a0, N*2\n")
        insts = decode_all(prog)
        assert insts[0].imm == 20

    def test_symbol_arithmetic(self):
        prog = assemble(".data\narr: .zero 32\n.text\nli a0, arr+8\n")
        insts = decode_all(prog)
        # la-style materialization of arr+8
        value = prog.symbol("arr") + 8
        assert value & 0xFFF == sum(
            i.imm for i in insts if i.mnemonic in ("addi", "addiw")) & 0xFFF


class TestVectorSyntax:
    def test_vsetvli(self):
        prog = assemble("vsetvli t0, a0, e32, m2\n")
        inst = decode_all(prog)[0]
        assert inst.mnemonic == "vsetvli"
        assert decode_vtype(inst.imm) == (32, 2)

    def test_vector_ops(self):
        prog = assemble("""
            vadd.vv v1, v2, v3
            vadd.vx v1, v2, a0
            vadd.vi v1, v2, 5
            vmacc.vv v4, v5, v6
            vle32.v v1, (a0)
            vse32.v v1, (a1)
            vlse64.v v2, (a0), t1
        """)
        insts = decode_all(prog)
        assert [i.mnemonic for i in insts] == [
            "vadd.vv", "vadd.vx", "vadd.vi", "vmacc.vv", "vle32.v",
            "vse32.v", "vlse64.v"]
        assert insts[2].imm == 5

    def test_masked_op(self):
        prog = assemble("vadd.vv v1, v2, v3, v0.t\n")
        assert decode_all(prog)[0].aux == 0

    def test_unmasked_default(self):
        prog = assemble("vadd.vv v1, v2, v3\n")
        assert decode_all(prog)[0].aux == 1


class TestXtSyntax:
    def test_indexed_load(self):
        prog = assemble("lrw a0, a1, a2, 2\n")
        inst = decode_all(prog)[0]
        assert (inst.mnemonic, inst.rd, inst.rs1, inst.rs2, inst.aux) == \
            ("lrw", 10, 11, 12, 2)

    def test_indexed_store(self):
        prog = assemble("srd a0, a1, a2, 3\n")
        inst = decode_all(prog)[0]
        assert (inst.mnemonic, inst.rs3, inst.rs1, inst.rs2, inst.aux) == \
            ("srd", 10, 11, 12, 3)

    def test_bitfield(self):
        prog = assemble("extu a0, a1, 15, 8\n")
        inst = decode_all(prog)[0]
        assert (inst.imm >> 6, inst.imm & 63) == (15, 8)

    def test_mac(self):
        prog = assemble("mula a0, a1, a2\n")
        inst = decode_all(prog)[0]
        assert inst.mnemonic == "mula"
        assert ("x", 10) in [tuple(r) for r in inst.srcs]


class TestCompression:
    def test_compression_shrinks_code(self):
        src = """
        _start:
            li t0, 10
            li t1, 0
        loop:
            add t1, t1, t0
            addi t0, t0, -1
            bnez t0, loop
            mv a0, t1
        """
        plain = assemble(src, compress=False)
        small = assemble(src, compress=True)
        assert len(small.text) < len(plain.text)
        # Both decode to the same instruction sequence.
        a = [(i.mnemonic, i.rd, i.rs1, i.rs2) for i in decode_all(plain)]
        b = [(i.mnemonic, i.rd, i.rs1, i.rs2) for i in decode_all(small)]
        assert a == b

    def test_compressed_branch_targets_correct(self):
        src = "\n".join(["top:"] + ["addi a0, a0, 1"] * 20
                        + ["bnez a0, top"])
        prog = assemble(src, compress=True)
        insts = decode_all(prog)
        branch = insts[-1]
        total = sum(i.size for i in insts[:-1])
        assert branch.imm == -total

    def test_vtype_roundtrip(self):
        for sew in (8, 16, 32, 64):
            for lmul in (1, 2, 4, 8):
                assert decode_vtype(encode_vtype(sew, lmul)) == (sew, lmul)
