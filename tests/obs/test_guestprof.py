"""Guest profiler: cycle attribution vs the recovered CFG."""

from __future__ import annotations

import pytest

from repro.analysis.cfg import build_cfg
from repro.harness.runner import run_on_core
from repro.obs import GuestProfiler
from repro.workloads import all_workloads


def _profiled(name: str):
    workload = next(w for w in all_workloads() if w.name == name)
    program = workload.program()
    profiler = GuestProfiler()
    result = run_on_core(program, "xt910", profiler=profiler)
    return program, profiler, result


@pytest.fixture(scope="module")
def dhrystone():
    """The bundled multi-function workload (4 recovered functions)."""
    return _profiled("dhrystone-like")


def test_attribution_coverage(dhrystone):
    """>= 95% of cycles must land inside cfg-recovered functions."""
    program, profiler, _ = dhrystone
    report = profiler.attribute(program)
    assert report.coverage >= 0.95
    assert report.attributed_cycles \
        + sum(report.unattributed.values()) == report.total_cycles


def test_bins_decompose_the_run(dhrystone):
    """Per-PC bins sum to the completion clock, which is within the
    pipeline drain of the stats cycle count."""
    _, profiler, result = dhrystone
    assert sum(profiler.bins().values()) == profiler.total_cycles
    assert 0 < profiler.total_cycles <= result.stats.cycles


def test_function_boundaries_match_cfg(dhrystone):
    """Every reported function is a cfg function and its hottest PC
    lies inside one of that function's own blocks."""
    program, profiler, _ = dhrystone
    report = profiler.attribute(program)
    cfg = build_cfg(program)
    assert len(report.rows) >= 2                  # calls really profiled
    names = {f.name for f in cfg.functions.values()}
    for row in report.rows:
        assert row.name in names
        func = cfg.functions[row.entry]
        assert any(cfg.blocks[b].start <= row.hot_pc < cfg.blocks[b].end
                   for b in func.blocks)
        assert row.cum_cycles >= row.self_cycles


def test_root_function_spans_the_run(dhrystone):
    program, profiler, _ = dhrystone
    report = profiler.attribute(program)
    cfg = build_cfg(program)
    root = next(r for r in report.rows if r.entry == cfg.entry)
    assert root.cum_cycles == profiler.total_cycles


def test_render_smoke(dhrystone):
    program, profiler, _ = dhrystone
    report = profiler.attribute(program)
    flat = report.render(top=10)
    assert "guest profile (flat)" in flat
    cum = report.render(top=10, cumulative=True)
    assert "guest profile (cumulative)" in cum
    for row in report.rows[:2]:
        assert row.name in flat


def test_single_function_workload_fully_attributed():
    program, profiler, _ = _profiled("coremark-list")
    report = profiler.attribute(program)
    assert report.coverage == 1.0
    assert len(report.rows) == 1
    assert report.rows[0].name == "_start"
