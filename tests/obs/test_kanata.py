"""Konata/Kanata export: golden format properties and round-trip."""

from __future__ import annotations

import json

import pytest

from repro.harness.runner import run_on_core
from repro.obs import (
    KANATA_HEADER,
    STAGES,
    PipelineTracer,
    parse_kanata,
    read_kanata,
    render_kanata,
)
from repro.obs.trace import RETIRE_SKEW
from repro.workloads import coremark_suite


@pytest.fixture(scope="module")
def traced_run():
    workload = next(w for w in coremark_suite()
                    if w.name == "coremark-list")
    tracer = PipelineTracer(window=2000)
    result = run_on_core(workload.program(), "xt910", tracer=tracer)
    return tracer, result


def test_kanata_round_trips_stage_cycles(traced_run):
    """render -> parse recovers every stage-entry cycle exactly."""
    tracer, _ = traced_run
    records = tracer.records()
    parsed = parse_kanata(render_kanata(records))
    assert len(parsed) == len(records)
    for lane_id, rec in enumerate(records):
        inst = parsed[lane_id]
        assert inst.seq == rec.seq
        assert inst.stages is not None
        assert tuple(inst.stages) == STAGES       # declaration order
        assert tuple(inst.stages.values()) == rec.stage_cycles()
        assert inst.retired == rec.complete + RETIRE_SKEW
        assert inst.label.startswith(f"{rec.pc:#x}: ")


def test_kanata_header_and_monotonic_cursor(traced_run):
    tracer, _ = traced_run
    text = render_kanata(tracer.records())
    lines = text.splitlines()
    assert lines[0] == KANATA_HEADER
    assert lines[1].startswith("C=\t")
    for line in lines[2:]:
        if line.startswith("C\t"):
            assert int(line.split("\t")[1]) > 0    # cursor never stalls
    # every declared instruction retires
    assert sum(1 for li in lines if li.startswith("I\t")) \
        == sum(1 for li in lines if li.startswith("R\t"))


def test_window_bounds_the_ring(traced_run):
    """A small window keeps the newest instructions and the true total."""
    _, result = traced_run
    workload = next(w for w in coremark_suite()
                    if w.name == "coremark-list")
    small = PipelineTracer(window=64)
    run_on_core(workload.program(), "xt910", tracer=small)
    assert len(small) == 64
    assert small.recorded == result.stats.instructions
    seqs = [rec.seq for rec in small.records()]
    assert seqs == sorted(seqs)
    assert seqs[-1] == max(seqs)                   # newest survive


def test_file_export_by_extension(traced_run, tmp_path):
    tracer, _ = traced_run
    kanata = tmp_path / "out.kanata"
    jsonl = tmp_path / "out.jsonl"
    tracer.write(str(kanata))
    tracer.write(str(jsonl))
    assert len(read_kanata(str(kanata))) == len(tracer)
    rows = [json.loads(line)
            for line in jsonl.read_text().splitlines()]
    assert len(rows) == len(tracer)
    assert rows[0]["retire"] == rows[0]["complete"] + RETIRE_SKEW
    assert "asm" in rows[0]


def test_empty_trace_renders_valid_file():
    assert parse_kanata(render_kanata([])) == {}


@pytest.mark.parametrize("text, message", [
    ("bogus\nC=\t0\n", "header"),
    (f"{KANATA_HEADER}\nC=\t0\nZ\t0\t0\t0\n", "unknown record"),
    (f"{KANATA_HEADER}\nC=\t0\nS\t7\t0\tF\n", "undeclared id"),
    (f"{KANATA_HEADER}\nC\t5\n", "C before C="),
])
def test_parser_rejects_malformed_input(text, message):
    with pytest.raises(ValueError, match=message):
        parse_kanata(text)


def test_window_must_be_positive():
    with pytest.raises(ValueError):
        PipelineTracer(window=0)
