"""Observability must be free when off and invisible when on.

The tracer and profiler hooks sit inside the timing model's hot loop;
the contract (same as ``--sanitize``) is that they only *observe*:
with both hooks attached, ``CoreStats.as_comparable()`` must stay
bit-identical to the committed frozen-oracle snapshot
(``tests/uarch/golden_stats.json``) on every bundled workload.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.harness.runner import run_on_core
from repro.obs import GuestProfiler, PipelineTracer
from repro.workloads import all_workloads

GOLDEN = json.loads(
    (Path(__file__).parent.parent / "uarch" / "golden_stats.json")
    .read_text())

ALL_WORKLOADS = sorted(w.name for w in all_workloads())


def _workload(name: str):
    for workload in all_workloads():
        if workload.name == name:
            return workload
    raise KeyError(name)


@pytest.mark.parametrize("name", ALL_WORKLOADS)
def test_hooks_do_not_change_stats(name):
    """Traced + profiled run == golden stats, on every workload.

    A deliberately small ring window exercises the drop path too: the
    hooks must stay free even when the buffer wraps.
    """
    tracer = PipelineTracer(window=256)
    profiler = GuestProfiler()
    result = run_on_core(_workload(name).program(), "xt910",
                         tracer=tracer, profiler=profiler)
    got = result.stats.as_comparable()
    want = {key: value for key, value in GOLDEN[name].items()
            if key in got}
    assert got == want
    # and the hooks genuinely observed the run
    assert tracer.recorded == result.stats.instructions
    assert profiler.recorded == result.stats.instructions


def test_hooks_default_off():
    """A plain run never touches the hook objects (both stay None)."""
    result = run_on_core(_workload("coremark-list").program(), "xt910")
    assert result.pipeline.tracer is None
    assert result.pipeline.profiler is None
