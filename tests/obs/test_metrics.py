"""Metrics registry: validation, export, diff, and the harness schema."""

from __future__ import annotations

import pytest

from repro.harness.report import ExperimentResult
from repro.harness.runner import run_on_core
from repro.harness.table1 import run_table1
from repro.obs import MetricsRegistry, collect_run, diff_metrics, render_diff
from repro.obs.metrics import _KEY_RE
from repro.workloads import coremark_suite


def test_set_validates_keys_and_values():
    registry = MetricsRegistry()
    registry.set("core.cycles", 100)
    registry.set("mem.l1d.hit-rate", 0.97)
    registry.set("run.core", "xt910")
    registry.set("lint.ok", True)                # bools coerce to int
    assert registry["lint.ok"] == 1
    for bad_key in ("Core.cycles", "core..x", ".core", "core.", "a b"):
        with pytest.raises(ValueError):
            registry.set(bad_key, 1)
    with pytest.raises(TypeError):
        registry.set("core.bad", [1, 2])


def test_update_namespaces_and_ordering():
    registry = MetricsRegistry()
    registry.update("mem.l1d", {"hits": 10, "misses": 2})
    assert list(registry.as_dict()) == ["mem.l1d.hits", "mem.l1d.misses"]
    assert len(registry) == 2
    assert "mem.l1d.hits" in registry


def test_json_and_csv_round_trip(tmp_path):
    registry = MetricsRegistry()
    registry.set("core.cycles", 123)
    registry.set("core.ipc", 1.5)
    path = tmp_path / "metrics.json"
    registry.save(str(path))
    assert MetricsRegistry.load(str(path)).as_dict() == registry.as_dict()
    csv_text = registry.to_csv()
    assert csv_text.splitlines()[0] == "metric,value"
    assert "core.cycles,123" in csv_text


def test_diff_metrics():
    before = {"core.cycles": 100, "core.ipc": 2.0, "gone.key": 1}
    after = {"core.cycles": 110, "core.ipc": 2.0, "new.key": 5}
    deltas = {d.key: d for d in diff_metrics(before, after)}
    assert sorted(deltas) == ["core.cycles", "gone.key", "new.key"]
    assert deltas["core.cycles"].change == pytest.approx(0.10)
    assert deltas["new.key"].before is None
    assert deltas["gone.key"].after is None
    rendered = render_diff(list(deltas.values()))
    assert "core.cycles" in rendered
    assert render_diff([]) == "no differences"


def test_collect_run_namespaces():
    workload = next(w for w in coremark_suite()
                    if w.name == "coremark-list")
    registry = collect_run(run_on_core(workload.program(), "xt910"))
    prefixes = {key.split(".", 1)[0] for key in registry.keys()}
    assert prefixes == {"core", "emu", "mem"}
    assert registry["core.cycles"] > 0
    assert "core.ipc" in registry
    for sub in ("l1i", "l1d", "l2", "tlb", "l1_prefetch",
                "l2_prefetch", "dram"):
        assert any(key.startswith(f"mem.{sub}.") for key in registry)


def test_codegen_counters_get_their_own_namespace():
    """A tier-3 run surfaces the translator's counters as
    ``sim.codegen.*`` — not folded into ``emu.*`` — and every key
    passes registry validation (blocks compiled, compile seconds,
    disk-cache hits/misses)."""
    workload = next(w for w in coremark_suite()
                    if w.name == "coremark-crc")
    registry = collect_run(
        run_on_core(workload.program(), "xt910", tier=3))
    for key in ("sim.codegen.blocks_compiled", "sim.codegen.compile_s",
                "sim.codegen.disk_hits", "sim.codegen.disk_misses",
                "sim.codegen.executions", "sim.codegen.persisted"):
        assert key in registry.keys()
        assert _KEY_RE.match(key)
    assert registry["sim.codegen.blocks_compiled"] >= 1
    assert not any(key.startswith("emu.codegen_")
                   for key in registry.keys())
    prefixes = {key.split(".", 1)[0] for key in registry.keys()}
    assert prefixes == {"core", "emu", "mem", "sim"}


def test_experiment_metric_namespacing():
    result = ExperimentResult(experiment="figx", title="t")
    result.metric("speedup.kernel", 1.5)
    assert result.metrics["figx.speedup.kernel"] == 1.5
    payload = result.to_json_dict()
    assert payload["experiment"] == "figx"
    assert payload["metrics"] == {"figx.speedup.kernel": 1.5}
    assert payload["rows"] == []


def test_harness_experiment_keys_are_schema_stable():
    """The shared key-naming gate for migrated experiments: every key
    a harness experiment emits is namespaced under the experiment name
    and survives registry validation (set() enforces ``_KEY_RE``, so a
    completed run proves the schema; this asserts it explicitly)."""
    result = run_table1(quick=True)
    keys = result.metrics.keys()
    assert keys == ["table1.configurations_built", "table1.smoke_runs"]
    for key in keys:
        assert _KEY_RE.match(key)
        assert key.startswith(f"{result.experiment}.")
    assert result.to_json_dict()["metrics"] == result.metrics.as_dict()
