"""Memory-hierarchy integration tests: latencies, prefetch timeliness."""

from repro.mem import MemHierConfig, MemoryHierarchy, PrefetchConfig
from repro.mem.dram import DramConfig


def make_hier(**kw) -> MemoryHierarchy:
    defaults = dict(
        dram=DramConfig(latency=200),
        l1_prefetch=PrefetchConfig.disabled(),
        l2_prefetch=PrefetchConfig.disabled(),
        model_tlb=False,
    )
    defaults.update(kw)
    return MemoryHierarchy(MemHierConfig(**defaults))


class TestDemandPath:
    def test_cold_miss_costs_dram(self):
        h = make_hier()
        lat = h.access_data(0x10000, cycle=0)
        assert lat > 200

    def test_l1_hit_after_fill(self):
        h = make_hier()
        h.access_data(0x10000, 0)
        lat = h.access_data(0x10008, 300)
        assert lat == h.config.l1_latency

    def test_l2_hit_after_l1_eviction(self):
        h = make_hier(l1d_size=1024, l1d_assoc=1)  # 16 sets
        h.access_data(0x0, 0)
        h.access_data(16 * 64, 1000)     # evicts line 0 from tiny L1
        lat = h.access_data(0x0, 2000)
        assert lat == h.config.l1_latency + h.config.l2_latency

    def test_writes_mark_dirty(self):
        h = make_hier()
        h.access_data(0x10000, 0, is_write=True)
        from repro.mem.cache import LineState

        assert h.l1d.lookup(0x10000).state is LineState.MODIFIED

    def test_line_crossing_access(self):
        h = make_hier()
        h.access_data(0x10000, 0)
        h.access_data(0x10040, 500)
        # 8-byte access spanning both (already resident) lines
        lat = h.access_data(0x1003C, 1000, size=8)
        assert lat > h.config.l1_latency  # extra cycle + second lookup

    def test_inst_fetch_path(self):
        h = make_hier()
        assert h.access_inst(0x1000, 0) > 0   # cold
        assert h.access_inst(0x1000, 500) == 0  # L1I hit
        assert h.access_inst(0x1010, 501) == 0  # same line


class TestTlbPath:
    def test_tlb_miss_charges_ptw(self):
        h = make_hier(model_tlb=True, ptw_latency=90)
        lat1 = h.access_data(0x10000, 0)
        h.drain_pending()
        lat2 = h.access_data(0x10008, 1000)
        assert lat1 - lat2 >= 90  # first access paid the walk

    def test_same_page_no_extra_walks(self):
        h = make_hier(model_tlb=True)
        for off in range(0, 4096, 64):
            h.access_data(0x10000 + off, off)
        assert h.tlb.stats.misses == 1


class TestPrefetchTimeliness:
    def test_prefetch_cuts_miss_stalls(self):
        base = make_hier()
        pf = make_hier(l1_prefetch=PrefetchConfig(distance=8, max_depth=32))
        cycle = 0
        for h in (base, pf):
            cycle = 0
            for i in range(512):
                cycle += h.access_data(0x100000 + i * 8, cycle) + 1
            h.total = cycle  # type: ignore[attr-defined]
        assert pf.total < base.total * 0.6

    def test_larger_distance_hides_more(self):
        def run(distance):
            h = make_hier(l1_prefetch=PrefetchConfig(distance=distance,
                                                     max_depth=64))
            cycle = 0
            for i in range(1024):
                cycle += h.access_data(0x100000 + i * 8, cycle) + 1
            return cycle

        assert run(16) < run(2)

    def test_prefetched_lines_marked(self):
        h = make_hier(l1_prefetch=PrefetchConfig(distance=4))
        cycle = 0
        for i in range(256):
            cycle += h.access_data(0x100000 + i * 8, cycle) + 1
        assert h.l1d.stats.prefetch_hits > 0

    def test_l2_prefetch_alone_helps(self):
        base = make_hier()
        l2pf = make_hier(l2_prefetch=PrefetchConfig(distance=8, max_depth=64))
        for h in (base, l2pf):
            cycle = 0
            for i in range(512):
                cycle += h.access_data(0x100000 + i * 8, cycle) + 1
            h.total = cycle  # type: ignore[attr-defined]
        assert l2pf.total < base.total

    def test_drain_pending(self):
        h = make_hier(l1_prefetch=PrefetchConfig(distance=8))
        cycle = 0
        for i in range(64):
            cycle += h.access_data(0x100000 + i * 8, cycle) + 1
        h.drain_pending()
        assert not h._pending_l1 and not h._pending_l2


class TestStats:
    def test_load_store_accounting(self):
        h = make_hier()
        h.access_data(0x1000, 0, is_write=False)
        h.access_data(0x2000, 1, is_write=True)
        assert h.stats.loads == 1 and h.stats.stores == 1

    def test_dram_request_count(self):
        h = make_hier()
        for i in range(4):
            h.access_data(0x10000 + i * 4096, i * 1000)
        assert h.dram.requests == 4
