"""Prefetcher tests: stride detection, streams, page-boundary policy."""

from repro.mem import PrefetchConfig, StreamPrefetcher


class Collector:
    def __init__(self):
        self.lines: list[int] = []
        self.tlb_pages: list[int] = []

    def issue(self, addr, cycle):
        self.lines.append(addr >> 6)

    def tlb(self, vpage):
        self.tlb_pages.append(vpage)


def make_pf(config=None, with_tlb=True):
    collector = Collector()
    config = config or PrefetchConfig()
    pf = StreamPrefetcher(config, 64, collector.issue,
                          collector.tlb if with_tlb else None)
    return pf, collector


def feed_sequential(pf, start, count, step=8):
    for i in range(count):
        pf.observe(start + i * step, cycle=i)


class TestStrideDetection:
    def test_sequential_stream_triggers(self):
        pf, col = make_pf()
        feed_sequential(pf, 0x10000, 32)
        assert len(col.lines) > 0
        # Prefetched lines are ahead of the demand stream.
        assert min(col.lines) > 0x10000 >> 6

    def test_no_prefetch_before_confidence(self):
        pf, col = make_pf()
        pf.observe(0x10000, 0)
        pf.observe(0x10008, 1)
        assert col.lines == []  # confidence not yet established

    def test_random_stream_stays_quiet(self):
        pf, col = make_pf()
        import random

        rng = random.Random(42)
        for i in range(100):
            pf.observe(rng.randrange(0, 1 << 20) & ~7, i)
        # A few accidental strides may fire but nothing systematic.
        assert len(col.lines) < 10

    def test_large_stride_detected(self):
        pf, col = make_pf()
        for i in range(16):
            pf.observe(0x20000 + i * 256, i)  # stride of 4 lines
        assert len(col.lines) > 0

    def test_negative_stride(self):
        pf, col = make_pf()
        for i in range(16):
            pf.observe(0x20000 - i * 64, i)
        assert len(col.lines) > 0
        assert col.lines[-1] < 0x20000 >> 6

    def test_disabled_never_issues(self):
        pf, col = make_pf(PrefetchConfig.disabled())
        feed_sequential(pf, 0x10000, 64)
        assert col.lines == []


class TestDistance:
    def test_larger_distance_runs_further_ahead(self):
        near_pf, near = make_pf(PrefetchConfig(distance=2))
        far_pf, far = make_pf(PrefetchConfig(distance=16, max_depth=32))
        feed_sequential(near_pf, 0x10000, 16)
        feed_sequential(far_pf, 0x10000, 16)
        demand_line = (0x10000 + 15 * 8) >> 6
        assert max(far.lines) - demand_line > max(near.lines) - demand_line

    def test_depth_limit_respected(self):
        pf, col = make_pf(PrefetchConfig(distance=100, max_depth=8))
        feed_sequential(pf, 0x10000, 32)
        demand_max = (0x10000 + 31 * 8) >> 6
        assert max(col.lines) <= demand_max + 8

    def test_no_duplicate_lines_in_steady_state(self):
        pf, col = make_pf(PrefetchConfig(distance=4))
        feed_sequential(pf, 0x10000, 200)
        assert len(col.lines) == len(set(col.lines))


class TestMultiStream:
    def test_interleaved_streams_both_tracked(self):
        # a[i] and b[i] live in different 16K regions (STREAM-style).
        pf, col = make_pf(PrefetchConfig(mode="multi", streams=8))
        for i in range(32):
            pf.observe(0x10000 + i * 8, 2 * i)
            pf.observe(0x80000 + i * 8, 2 * i + 1)
        low = [l for l in col.lines if l < 0x40000 >> 6]
        high = [l for l in col.lines if l >= 0x40000 >> 6]
        assert low and high

    def test_global_mode_single_stream(self):
        # Global mode collapses interleaved streams into one detector,
        # so alternating streams destroy the stride.
        pf, col = make_pf(PrefetchConfig.global_mode())
        for i in range(32):
            pf.observe(0x10000 + i * 8, 2 * i)
            pf.observe(0x80000 + i * 8, 2 * i + 1)
        multi_pf, multi_col = make_pf(PrefetchConfig(mode="multi"))
        for i in range(32):
            multi_pf.observe(0x10000 + i * 8, 2 * i)
            multi_pf.observe(0x80000 + i * 8, 2 * i + 1)
        assert len(col.lines) < len(multi_col.lines)

    def test_global_mode_works_for_simple_stream(self):
        pf, col = make_pf(PrefetchConfig.global_mode())
        feed_sequential(pf, 0x10000, 64)
        assert len(col.lines) > 10

    def test_stream_capacity_thrash(self):
        # With only 2 stream slots, three interleaved regions keep
        # evicting each other's detectors; with 8 slots they coexist.
        small_pf, small_col = make_pf(PrefetchConfig(mode="multi", streams=2))
        big_pf, big_col = make_pf(PrefetchConfig(mode="multi", streams=8))
        for i in range(16):
            for base in (0x10000, 0x80000, 0x100000):
                small_pf.observe(base + i * 8, i)
                big_pf.observe(base + i * 8, i)
        assert small_pf.stats.streams_allocated \
            > big_pf.stats.streams_allocated
        assert len(big_col.lines) > len(small_col.lines)


class TestPageBoundary:
    def test_crosspage_with_tlb_prefetch(self):
        pf, col = make_pf(PrefetchConfig(distance=8, cross_page=True))
        # Walk right up to a page boundary.
        feed_sequential(pf, 0x10000 + 0x1000 - 512, 128)
        beyond = [l for l in col.lines if (l << 6) >= 0x11000]
        assert beyond, "prefetches should cross the page"
        assert col.tlb_pages, "next-page translation should be requested"

    def test_crosspage_disabled_stops_at_boundary(self):
        pf, col = make_pf(PrefetchConfig(distance=8, cross_page=False))
        feed_sequential(pf, 0x10000 + 0x1000 - 512, 128)
        # The stream restarts after the demand crosses, but no prefetch
        # is issued across a boundary ahead of the demand stream.
        assert pf.stats.dropped_page_boundary > 0

    def test_no_tlb_fn_stops_at_boundary(self):
        pf, col = make_pf(PrefetchConfig(distance=8, cross_page=True),
                          with_tlb=False)
        feed_sequential(pf, 0x10000 + 0x1000 - 512, 128)
        assert pf.stats.dropped_page_boundary > 0
        assert col.tlb_pages == []
