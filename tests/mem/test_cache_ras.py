"""Cache/TLB RAS modeling: ECC, parity, way quarantine, scrubbing."""

import random

from repro.mem.cache import Cache
from repro.mem.hierarchy import MemoryHierarchy
from repro.mem.tlb import Tlb


def _small_cache(**kwargs):
    # 4 ways, 1 set: every line shares the set, ways are observable.
    return Cache("t", size=4 * 64, assoc=4, line_size=64, **kwargs)


class TestDataEcc:
    def test_single_bit_corrected_on_access(self):
        cache = _small_cache()
        cache.fill(0x1000)
        assert cache.inject_data_fault(addr=0x1000) is not None
        assert cache.access(0x1000)         # still a hit: SEC-DED repaired
        assert cache.stats.ecc_corrected == 1
        assert cache.stats.ecc_uncorrectable == 0
        # fault is cleared: the next access is clean
        cache.access(0x1000)
        assert cache.stats.ecc_corrected == 1

    def test_double_bit_escalates(self):
        events = []
        cache = _small_cache()
        cache.on_uncorrectable = lambda addr, name: events.append(
            (addr, name))
        cache.fill(0x2000)
        cache.inject_data_fault(addr=0x2000, bits=2)
        assert not cache.access(0x2000)     # miss: line was dropped
        assert cache.stats.ecc_uncorrectable == 1
        assert events == [(0x2000, "t")]

    def test_corrected_callback_fires(self):
        events = []
        cache = _small_cache()
        cache.on_corrected = lambda addr, name: events.append(addr)
        cache.fill(0x3000)
        cache.inject_data_fault(addr=0x3000)
        cache.access(0x3000)
        assert events == [0x3000]


class TestTagParity:
    def test_tag_fault_drops_line(self):
        cache = _small_cache()
        cache.fill(0x4000)
        cache.inject_tag_fault(addr=0x4000)
        assert not cache.access(0x4000)     # parity forces a refetch
        assert cache.stats.parity_errors == 1
        cache.fill(0x4000)                  # recovery: clean refill
        assert cache.access(0x4000)


class TestQuarantine:
    def test_way_disabled_after_repeated_correctables(self):
        cache = _small_cache()
        cache.fill(0x1000)
        way = cache.lookup(0x1000).way
        for _ in range(cache.quarantine_threshold):
            cache.inject_data_fault(addr=0x1000)
            cache.access(0x1000)
            if not cache.contains(0x1000):
                cache.fill(0x1000)
        assert cache.stats.ways_disabled == 1
        assert cache.disabled_way_count() == 1
        assert way in cache._disabled_ways[0]
        # capacity shrinks: only 3 lines fit in the 4-way set now
        for i in range(4):
            cache.fill(0x10_000 + i * 64 * cache.num_sets * 16)
        assert cache.occupancy <= 3

    def test_last_way_never_disabled(self):
        cache = Cache("direct", size=2 * 64, assoc=2, line_size=64,
                      quarantine_threshold=1)
        cache.fill(0x1000)
        cache.inject_data_fault(addr=0x1000)
        cache.access(0x1000)                # disables way 0 (1 of 2)
        cache.fill(0x2000)
        cache.inject_data_fault(addr=0x2000)
        cache.access(0x2000)                # must NOT disable the last way
        assert cache.disabled_way_count() == 1


class TestScrub:
    def test_scrub_resolves_latent_faults(self):
        cache = _small_cache()
        cache.fill(0x1000)
        cache.fill(0x2000)
        cache.inject_data_fault(addr=0x1000, bits=1)
        cache.inject_data_fault(addr=0x2000, bits=2)
        report = cache.scrub()
        assert report["corrected"] == 1
        assert report["uncorrectable"] == 1

    def test_random_injection_picks_resident_line(self):
        cache = _small_cache()
        rng = random.Random(0)
        assert cache.inject_data_fault(rng=rng) is None   # empty cache
        cache.fill(0x5000)
        assert cache.inject_data_fault(rng=rng) is not None


class TestTlbParity:
    def test_poisoned_entry_detected_and_purged(self):
        tlb = Tlb()
        tlb.refill(0x1000)
        assert tlb.inject_fault(vaddr=0x1000)
        latency, entry = tlb.translate(0x1000)
        assert entry is None                # detected: full miss -> walk
        assert tlb.stats.parity_errors == 1
        tlb.refill(0x1000)                  # walk reinstalls cleanly
        _, entry = tlb.translate(0x1000)
        assert entry is not None

    def test_scrub_counts_latent_poison(self):
        tlb = Tlb()
        tlb.refill(0x1000)
        tlb.refill(0x2000)
        tlb.inject_fault(vaddr=0x2000)
        assert tlb.scrub() == 1
        assert tlb.stats.parity_errors == 1

    def test_contains_ignores_poisoned(self):
        tlb = Tlb()
        tlb.refill(0x1000)
        assert tlb.contains(0x1000)
        tlb.inject_fault(vaddr=0x1000)
        assert not tlb.contains(0x1000)


class TestHierarchyPlumbing:
    def test_callbacks_forward_and_summary_aggregates(self):
        hierarchy = MemoryHierarchy()
        seen = []
        hierarchy.on_uncorrectable = lambda addr, src: seen.append(src)
        hierarchy.l1d.fill(0x1000)
        hierarchy.l1d.inject_data_fault(addr=0x1000, bits=2)
        hierarchy.l1d.access(0x1000)
        assert seen == ["L1D"]
        summary = hierarchy.ras_summary()
        assert summary["ecc_uncorrectable"] == 1

    def test_hierarchy_scrub(self):
        hierarchy = MemoryHierarchy()
        hierarchy.l1i.fill(0x8000)
        hierarchy.l1i.inject_data_fault(addr=0x8000)
        report = hierarchy.scrub()
        assert report["L1I"]["corrected"] == 1
