"""SV39 page-table builder and walker tests (section V.E)."""

import pytest

from repro.mem import PageFault, PageTableBuilder, PageTableWalker
from repro.sim import Memory


def make_walker():
    memory = Memory()
    builder = PageTableBuilder(memory)
    return memory, builder, lambda: PageTableWalker(memory, builder.root)


class TestBasicWalk:
    def test_4k_mapping(self):
        _, builder, walker_of = make_walker()
        builder.map_page(0x1000, 0x8_0000, page_size=4096)
        t = walker_of().walk(0x1234)
        assert t.paddr == 0x8_0234
        assert t.page_size == 4096
        assert t.levels_walked == 3

    def test_2m_huge_page(self):
        _, builder, walker_of = make_walker()
        builder.map_page(0x20_0000, 0x4000_0000, page_size=2 << 20)
        t = walker_of().walk(0x20_0000 + 0x12345)
        assert t.paddr == 0x4000_0000 + 0x12345
        assert t.page_size == 2 << 20
        assert t.levels_walked == 2  # leaf at level 1

    def test_1g_huge_page(self):
        _, builder, walker_of = make_walker()
        builder.map_page(0x4000_0000, 0x8000_0000 + (1 << 30),
                         page_size=1 << 30)
        t = walker_of().walk(0x4000_0000 + 0xABCDE)
        assert t.page_size == 1 << 30
        assert t.levels_walked == 1  # leaf at level 0

    def test_all_three_sizes_coexist(self):
        """The MMU's 3-level tables can mix 4K/2M/1G leaves (section V.E)."""
        _, builder, walker_of = make_walker()
        builder.map_page(0x0000_1000, 0x1000, 4096)
        builder.map_page(0x0020_0000, 0x0020_0000, 2 << 20)
        builder.map_page(0x4000_0000, 0x4000_0000, 1 << 30)
        walker = walker_of()
        assert walker.walk(0x1000).page_size == 4096
        assert walker.walk(0x0020_0000).page_size == 2 << 20
        assert walker.walk(0x4000_0000).page_size == 1 << 30

    def test_identity_map(self):
        _, builder, walker_of = make_walker()
        builder.identity_map(0x1_0000, 0x4000)
        walker = walker_of()
        for off in (0, 0x1000, 0x3FFF):
            assert walker.walk(0x1_0000 + off).paddr == 0x1_0000 + off


class TestFaults:
    def test_unmapped_address_faults(self):
        _, _, walker_of = make_walker()
        with pytest.raises(PageFault):
            walker_of().walk(0xDEAD_0000)

    def test_partial_walk_faults(self):
        _, builder, walker_of = make_walker()
        builder.map_page(0x1000, 0x1000, 4096)
        # Sibling page in the same table is still unmapped.
        with pytest.raises(PageFault):
            walker_of().walk(0x5000)

    def test_misaligned_mapping_rejected(self):
        _, builder, _ = make_walker()
        with pytest.raises(ValueError):
            builder.map_page(0x1234, 0x1000, 4096)
        with pytest.raises(ValueError):
            builder.map_page(0x10_0000, 0x10_0000, 2 << 20)


class TestWalkCost:
    def test_pte_load_counts(self):
        _, builder, walker_of = make_walker()
        builder.map_page(0x1000, 0x1000, 4096)
        builder.map_page(0x4000_0000, 0x4000_0000, 1 << 30)
        walker = walker_of()
        walker.walk(0x1000)
        assert walker.pte_loads == 3   # 4K: full 3-level walk
        walker.walk(0x4000_0000)
        assert walker.pte_loads == 4   # 1G: single level
        assert walker.walks == 2

    def test_huge_pages_reduce_walk_depth(self):
        """The Linux huge-page motivation: fewer PTE loads per walk."""
        _, builder, walker_of = make_walker()
        builder.map_page(0, 0, 1 << 30)
        builder.map_page(1 << 30, 1 << 30, 1 << 30)
        walker = walker_of()
        span = 64 << 20
        for vaddr in range(0, span, 2 << 20):
            walker.walk(vaddr)
        assert walker.pte_loads == walker.walks  # every walk is 1 load
