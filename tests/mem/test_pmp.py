"""PMP tests (section II: standard 8-16 region PMP)."""

import pytest

from repro.isa.csr import PrivMode
from repro.mem.pmp import AccessType, Pmp, PmpError, PmpMatch

R, W, X = AccessType.READ, AccessType.WRITE, AccessType.EXECUTE
U, S, M = PrivMode.USER, PrivMode.SUPERVISOR, PrivMode.MACHINE


def make_pmp(**kw):
    return Pmp(**kw)


class TestMatching:
    def test_napot_region(self):
        pmp = make_pmp()
        pmp.configure(0, PmpMatch.NAPOT, Pmp.napot_addr(0x8000_0000, 0x1000),
                      readable=True)
        assert pmp.check(0x8000_0000, 8, R, U)
        assert pmp.check(0x8000_0FF8, 8, R, U)
        assert not pmp.check(0x8000_1000, 8, R, U)  # outside: default deny

    def test_na4_region(self):
        pmp = make_pmp()
        pmp.configure(0, PmpMatch.NA4, 0x1000 >> 2, readable=True)
        assert pmp.check(0x1000, 4, R, U)
        assert not pmp.check(0x1004, 4, R, U)

    def test_tor_region(self):
        pmp = make_pmp()
        pmp.configure(0, PmpMatch.OFF, 0x2000 >> 2)       # base marker
        pmp.configure(1, PmpMatch.TOR, 0x3000 >> 2, readable=True,
                      writable=True)
        assert pmp.check(0x2000, 8, R, U)
        assert pmp.check(0x2FF8, 8, W, U)
        assert not pmp.check(0x3000, 8, R, U)
        assert not pmp.check(0x1FF8, 8, R, U)

    def test_partial_overlap_fails(self):
        pmp = make_pmp()
        pmp.configure(0, PmpMatch.NAPOT, Pmp.napot_addr(0x1000, 0x1000),
                      readable=True)
        # Straddles the region's end.
        assert not pmp.check(0x1FFC, 8, R, M)

    def test_napot_encoding_validation(self):
        with pytest.raises(ValueError):
            Pmp.napot_addr(0x1000, 12)       # not a power of two
        with pytest.raises(ValueError):
            Pmp.napot_addr(0x1004, 0x1000)   # misaligned base


class TestPermissions:
    def test_rwx_bits_independent(self):
        pmp = make_pmp()
        pmp.configure(0, PmpMatch.NAPOT, Pmp.napot_addr(0x1000, 0x1000),
                      readable=True, executable=True)
        assert pmp.check(0x1000, 4, R, U)
        assert pmp.check(0x1000, 4, X, U)
        assert not pmp.check(0x1000, 4, W, U)

    def test_priority_lowest_entry_wins(self):
        pmp = make_pmp()
        pmp.configure(0, PmpMatch.NAPOT, Pmp.napot_addr(0x1000, 0x100),
                      readable=True)                      # small, RO
        pmp.configure(1, PmpMatch.NAPOT, Pmp.napot_addr(0x1000, 0x1000),
                      readable=True, writable=True)       # big, RW
        assert not pmp.check(0x1000, 4, W, U)   # entry 0 wins: read-only
        assert pmp.check(0x1800, 4, W, U)       # only entry 1 matches


class TestPrivilegeRules:
    def test_machine_default_allow(self):
        pmp = make_pmp()
        assert pmp.check(0xDEAD_0000, 8, W, M)

    def test_user_default_deny_with_active_entries(self):
        pmp = make_pmp()
        pmp.configure(0, PmpMatch.NA4, 0x1000 >> 2, readable=True)
        assert not pmp.check(0x9000, 8, R, U)

    def test_user_default_allow_when_pmp_unprogrammed(self):
        pmp = make_pmp()
        assert pmp.check(0x9000, 8, R, U)

    def test_unlocked_entry_does_not_bind_machine(self):
        pmp = make_pmp()
        pmp.configure(0, PmpMatch.NAPOT, Pmp.napot_addr(0x1000, 0x1000),
                      readable=True)   # no W
        assert pmp.check(0x1000, 8, W, M)       # M ignores unlocked entries

    def test_locked_entry_binds_machine(self):
        pmp = make_pmp()
        pmp.configure(0, PmpMatch.NAPOT, Pmp.napot_addr(0x1000, 0x1000),
                      readable=True, locked=True)
        assert not pmp.check(0x1000, 8, W, M)
        assert pmp.check(0x1000, 8, R, M)


class TestLocking:
    def test_locked_entry_rejects_reconfig(self):
        pmp = make_pmp()
        pmp.configure(0, PmpMatch.NA4, 0x1000 >> 2, readable=True,
                      locked=True)
        with pytest.raises(PmpError):
            pmp.configure(0, PmpMatch.OFF, 0)

    def test_region_count_validation(self):
        with pytest.raises(ValueError):
            Pmp(regions=4)
        assert Pmp(regions=8).regions == 8
        assert Pmp(regions=16).regions == 16

    def test_denial_stats(self):
        pmp = make_pmp()
        pmp.configure(0, PmpMatch.NA4, 0x1000 >> 2, readable=True)
        pmp.check(0x9000, 4, R, U)
        assert pmp.denials == 1
