"""TLB tests: multi-size probing, ASID handling, flush behaviour."""

from repro.mem import Tlb, TlbConfig


def make_tlb(**kw):
    return Tlb(TlbConfig(**kw))


class TestTranslationPath:
    def test_miss_then_utlb_hit(self):
        tlb = make_tlb()
        lat, entry = tlb.translate(0x1000)
        assert entry is None
        tlb.refill(0x1000)
        lat, entry = tlb.translate(0x1234)
        assert entry is not None
        assert lat == 0  # uTLB hit
        assert tlb.stats.utlb_hits == 1

    def test_jtlb_hit_after_utlb_eviction(self):
        tlb = make_tlb(utlb_entries=2)
        for page in range(4):
            tlb.refill(page << 12)
        # page 0 evicted from uTLB, still in jTLB
        lat, entry = tlb.translate(0x0)
        assert entry is not None
        assert lat >= 1  # at least one jTLB probe
        assert tlb.stats.jtlb_hits == 1
        # after jTLB hit the uTLB is refilled
        lat2, _ = tlb.translate(0x10)
        assert lat2 == 0

    def test_probe_order_4k_2m_1g(self):
        tlb = make_tlb(utlb_entries=1)
        tlb.refill(0x4000_0000, page_size=1 << 30)   # 1G page
        tlb.refill(0x123000)                          # 4K page (occupies uTLB)
        # 1G entry now only in jTLB: probes 4K (miss), 2M (miss), 1G (hit)
        lat, entry = tlb.translate(0x4000_5678)
        assert entry is not None
        assert entry.page_size == 1 << 30
        assert lat == 3

    def test_multi_size_entries_coexist(self):
        tlb = make_tlb()
        tlb.refill(0x0000_0000, page_size=4096)
        tlb.refill(0x0020_0000, page_size=2 << 20)
        tlb.refill(0x4000_0000, page_size=1 << 30)
        for vaddr, size in [(0x100, 4096), (0x0020_1000, 2 << 20),
                            (0x4123_4567, 1 << 30)]:
            _, entry = tlb.translate(vaddr)
            assert entry is not None and entry.page_size == size

    def test_huge_page_covers_whole_range(self):
        tlb = make_tlb()
        tlb.refill(0x0020_0000, page_size=2 << 20)
        _, entry = tlb.translate(0x0020_0000 + (2 << 20) - 1)
        assert entry is not None
        _, entry = tlb.translate(0x0020_0000 + (2 << 20))
        assert entry is None


class TestAsid:
    def test_entries_are_asid_private(self):
        tlb = make_tlb()
        tlb.refill(0x5000)
        tlb.context_switch()
        _, entry = tlb.translate(0x5000)
        assert entry is None  # belongs to the old ASID

    def test_global_pages_cross_asids(self):
        tlb = make_tlb()
        tlb.refill(0x5000, global_page=True)
        tlb.context_switch()
        _, entry = tlb.translate(0x5000)
        assert entry is not None

    def test_asid_wrap_forces_flush(self):
        tlb = make_tlb(asid_bits=4)  # 16 ASIDs
        flushes = sum(tlb.context_switch() for _ in range(100))
        assert flushes == tlb.stats.flushes
        assert flushes >= 6  # every ~15 switches

    def test_wide_asid_flushes_about_10x_less(self):
        """Section V.E: 16-bit ASID cuts context-switch flushes ~10x
        compared to a narrow ASID under the same switch load."""
        switches = 4000
        narrow = make_tlb(asid_bits=8)
        wide = make_tlb(asid_bits=12)
        for _ in range(switches):
            narrow.context_switch()
            wide.context_switch()
        assert narrow.stats.flushes > 0
        ratio = narrow.stats.flushes / max(wide.stats.flushes, 1)
        assert ratio >= 10

    def test_flush_asid_selective(self):
        tlb = make_tlb()
        tlb.refill(0x1000)
        old_asid = tlb.asid
        tlb.context_switch()
        tlb.refill(0x2000)
        tlb.flush_asid(old_asid)
        # new-ASID entry survives
        _, entry = tlb.translate(0x2000)
        assert entry is not None


class TestCapacity:
    def test_jtlb_set_conflicts(self):
        tlb = make_tlb(utlb_entries=1, jtlb_entries=16, jtlb_ways=4)
        # 4 sets; pages stepping by the set count collide.
        sets = 4
        pages = [i * sets for i in range(6)]  # all map to set 0
        for page in pages:
            tlb.refill(page << 12)
        present = sum(tlb.contains(page << 12) for page in pages)
        # 4 ways retain the last four pages; the 1-entry uTLB holds a
        # duplicate of the most recent one.
        assert present == 4

    def test_prefetch_fill_counted(self):
        tlb = make_tlb()
        tlb.refill(0x9000, prefetched=True)
        assert tlb.stats.prefetch_fills == 1
        _, entry = tlb.translate(0x9000)
        assert entry is not None
