"""Cache model tests: indexing, LRU, states, stats."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.mem import Cache, LineState


def make_cache(size=1024, assoc=2, line=64):
    return Cache("test", size=size, assoc=assoc, line_size=line)


class TestBasics:
    def test_miss_then_hit(self):
        c = make_cache()
        assert not c.access(0x1000)
        c.fill(0x1000)
        assert c.access(0x1000)
        assert c.stats.hits == 1 and c.stats.misses == 1

    def test_same_line_offsets_hit(self):
        c = make_cache()
        c.fill(0x1000)
        for off in (0, 8, 32, 63):
            assert c.access(0x1000 + off)

    def test_different_lines_miss(self):
        c = make_cache()
        c.fill(0x1000)
        assert not c.access(0x1040)

    def test_invalid_geometry_raises(self):
        with pytest.raises(ValueError):
            Cache("bad", size=1000, assoc=3, line_size=64)

    def test_occupancy(self):
        c = make_cache()
        for i in range(5):
            c.fill(i * 64)
        assert c.occupancy == 5


class TestReplacement:
    def test_lru_eviction(self):
        # 2-way, 8 sets; three lines mapping to set 0.
        c = make_cache(size=1024, assoc=2, line=64)
        lines = [0, 8 * 64, 16 * 64]  # all index to set 0
        c.fill(lines[0])
        c.fill(lines[1])
        c.access(lines[0])            # make line 0 MRU
        c.fill(lines[2])              # evicts line 1
        assert c.contains(lines[0])
        assert not c.contains(lines[1])
        assert c.contains(lines[2])
        assert c.stats.evictions == 1

    def test_dirty_eviction_counts_writeback(self):
        c = make_cache(size=1024, assoc=1, line=64)  # 16 sets
        c.fill(0)
        c.access(0, is_write=True)
        c.fill(16 * 64)  # same set, evicts dirty line
        assert c.stats.writebacks == 1

    def test_fill_existing_line_no_eviction(self):
        c = make_cache()
        c.fill(0x1000)
        c.fill(0x1000)
        assert c.stats.evictions == 0


class TestStates:
    def test_write_upgrades_to_modified(self):
        c = make_cache()
        c.fill(0x1000, LineState.SHARED)
        c.access(0x1000, is_write=True)
        assert c.lookup(0x1000).state is LineState.MODIFIED

    def test_invalidate(self):
        c = make_cache()
        c.fill(0x1000)
        line = c.invalidate(0x1000)
        assert line is not None
        assert not c.contains(0x1000)

    def test_flush_all_reports_dirty(self):
        c = make_cache()
        c.fill(0)
        c.fill(64)
        c.access(0, is_write=True)
        assert c.flush_all() == 1
        assert c.occupancy == 0

    def test_prefetch_accounting(self):
        c = make_cache()
        c.fill(0x1000, prefetched=True)
        assert c.stats.prefetch_fills == 1
        c.access(0x1000)
        assert c.stats.prefetch_hits == 1
        # A second access is a plain hit.
        c.access(0x1000)
        assert c.stats.prefetch_hits == 1


class TestGeometry:
    @pytest.mark.parametrize("size,assoc", [(32 << 10, 4), (64 << 10, 4),
                                            (256 << 10, 8), (8 << 20, 16)])
    def test_paper_configurations(self, size, assoc):
        # Table I: L1 32/64KB, L2 256KB-8MB 8/16-way.
        c = Cache("cfg", size=size, assoc=assoc, line_size=64)
        assert c.num_sets * assoc * 64 == size

    def test_direct_mapped_conflicts(self):
        c = make_cache(size=512, assoc=1, line=64)  # 8 sets
        c.fill(0)
        c.fill(512)  # same set
        assert not c.contains(0)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(0, 1 << 20), min_size=1, max_size=200))
def test_occupancy_never_exceeds_capacity(addresses):
    c = Cache("prop", size=2048, assoc=2, line_size=64)
    for addr in addresses:
        if not c.access(addr):
            c.fill(addr)
    assert c.occupancy <= 2048 // 64
    for cache_set in c._sets:
        assert len(cache_set) <= 2


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(0, 1 << 16), min_size=1, max_size=100))
def test_fill_then_immediate_access_hits(addresses):
    c = Cache("prop2", size=4096, assoc=4, line_size=64)
    for addr in addresses:
        c.fill(addr)
        assert c.access(addr)
