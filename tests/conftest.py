"""Shared pytest configuration: hypothesis example budgets.

The PR lane runs the default profile. The nightly workflow exports
``HYPOTHESIS_PROFILE=nightly`` to raise the example budget on every
property test that doesn't pin its own ``max_examples`` (per-test
``@settings`` pins always win — they were sized to the cost of the
individual property).
"""

from __future__ import annotations

import os

try:
    from hypothesis import settings
except ImportError:  # minimal environments without hypothesis
    settings = None

if settings is not None:
    settings.register_profile("nightly", max_examples=1000, deadline=None)
    settings.register_profile("ci", deadline=None)
    _profile = os.environ.get("HYPOTHESIS_PROFILE", "default")
    if _profile != "default":
        settings.load_profile(_profile)


import pytest  # noqa: E402


@pytest.fixture(autouse=True)
def _isolated_code_cache(tmp_path, monkeypatch):
    """Point the tier-3 on-disk code cache at a per-test directory.

    Without this, tests would read and write ``~/.cache/repro-codegen``
    — warm/cold assertions would depend on whatever earlier runs left
    behind, and the suite would litter the user's cache.
    """
    monkeypatch.setenv("REPRO_CODE_CACHE_DIR", str(tmp_path / "codegen"))


@pytest.fixture(autouse=True)
def _isolated_explore_store(tmp_path, monkeypatch):
    """Point the explore result store at a per-test directory.

    Same rationale as the code cache: cache-hit/miss assertions must
    not depend on what earlier runs left in ``~/.cache/repro-explore``.
    """
    monkeypatch.setenv("REPRO_EXPLORE_CACHE_DIR",
                       str(tmp_path / "explore"))
