"""Every example must run to completion (examples are documentation)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py"))

# prefetch_tuning sweeps many configurations; keep it out of the quick
# test run (it is exercised via the fig21 benchmarks anyway).
_SLOW = {"prefetch_tuning.py"}


@pytest.mark.parametrize(
    "example", [e for e in EXAMPLES if e.name not in _SLOW],
    ids=lambda e: e.name)
def test_example_runs(example):
    result = subprocess.run(
        [sys.executable, str(example)], capture_output=True, text=True,
        timeout=600)
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip()
