"""Toolchain tests: both compiler personalities must be correct, and
the optimized one must do what section IX claims."""

import copy

import pytest

from repro.sim import Emulator
from repro.toolchain import (
    ArrayDecl,
    Bin,
    CodegenOptions,
    Const,
    For,
    Function,
    GlobalDecl,
    Interpreter,
    Let,
    Load,
    LoadGlobal,
    Store,
    StoreGlobal,
    U32,
    Var,
    build_program,
    compile_function,
    dead_store_elimination,
    fig20_kernels,
)

KERNELS = fig20_kernels()


def run_compiled(function, options):
    program = build_program(copy.deepcopy(function), options)
    emulator = Emulator(program)
    emulator.run()
    assert emulator.exit_code == 0
    return emulator.state.memory.load_int(program.symbol("result"), 8)


@pytest.mark.parametrize("kernel", KERNELS, ids=[k.name for k in KERNELS])
class TestCorrectness:
    def test_base_codegen_matches_interpreter(self, kernel):
        expected = Interpreter(copy.deepcopy(kernel)).run()
        assert run_compiled(kernel, CodegenOptions.base()) == expected

    def test_optimized_codegen_matches_interpreter(self, kernel):
        expected = Interpreter(copy.deepcopy(kernel)).run()
        assert run_compiled(kernel, CodegenOptions.optimized()) == expected


@pytest.mark.parametrize("kernel", KERNELS, ids=[k.name for k in KERNELS])
def test_optimized_code_executes_fewer_instructions(kernel):
    counts = {}
    for label, options in (("base", CodegenOptions.base()),
                           ("opt", CodegenOptions.optimized())):
        program = build_program(copy.deepcopy(kernel), options)
        emulator = Emulator(program)
        emulator.run()
        counts[label] = emulator.state.instret
    assert counts["opt"] < counts["base"]


class TestInterpreter:
    def test_simple_sum(self):
        fn = Function(name="t", body=[
            For("i", Const(10), (
                Let("acc", Bin("add", Var("acc"), Var("i"))),
            ))])
        assert Interpreter(fn).run() == 45

    def test_array_roundtrip(self):
        fn = Function(name="t", arrays=[ArrayDecl("a", 4, 8)], body=[
            Store("a", Const(2), Const(99)),
            Let("acc", Load("a", Const(2)))])
        assert Interpreter(fn).run() == 99

    def test_signed_narrow_load(self):
        fn = Function(name="t", arrays=[ArrayDecl("a", 2, 2, True)], body=[
            Store("a", Const(0), Const(-5)),
            Let("acc", Load("a", Const(0)))])
        assert Interpreter(fn).run() == (-5) & ((1 << 64) - 1)

    def test_unsigned_narrow_load(self):
        fn = Function(name="t", arrays=[ArrayDecl("a", 2, 2, False)], body=[
            Store("a", Const(0), Const(-5)),
            Let("acc", Load("a", Const(0)))])
        assert Interpreter(fn).run() == 0xFFFB

    def test_u32_truncation(self):
        fn = Function(name="t", body=[
            Let("x", Const(0x1_0000_0005)),
            Let("acc", U32(Var("x")))])
        assert Interpreter(fn).run() == 5

    def test_globals(self):
        fn = Function(name="t", globals_=[GlobalDecl("g", 7)], body=[
            StoreGlobal("g", Bin("add", LoadGlobal("g"), Const(3))),
            Let("acc", LoadGlobal("g"))])
        assert Interpreter(fn).run() == 10

    def test_rotr32(self):
        fn = Function(name="t", body=[
            Let("acc", Bin("rotr32", Const(0x80000001), Const(1)))])
        assert Interpreter(fn).run() == 0xC0000000


class TestDse:
    def _double_store(self):
        return Function(
            name="t", arrays=[ArrayDecl("a", 4, 8)],
            body=[Store("a", Const(0), Const(1)),
                  Store("a", Const(0), Const(2)),
                  Let("acc", Load("a", Const(0)))])

    def test_removes_overwritten_store(self):
        fn, removed = dead_store_elimination(self._double_store())
        assert removed == 1
        assert Interpreter(fn).run() == 2

    def test_keeps_store_with_intervening_read(self):
        fn = Function(
            name="t", arrays=[ArrayDecl("a", 4, 8)],
            body=[Store("a", Const(0), Const(1)),
                  Let("x", Load("a", Const(0))),
                  Store("a", Const(0), Const(2)),
                  Let("acc", Bin("add", Var("x"), Load("a", Const(0))))])
        fn2, removed = dead_store_elimination(copy.deepcopy(fn))
        assert removed == 0
        assert Interpreter(fn2).run() == 3

    def test_keeps_store_before_loop(self):
        fn = Function(
            name="t", arrays=[ArrayDecl("a", 4, 8)],
            body=[Store("a", Const(0), Const(1)),
                  For("i", Const(1), (
                      Let("acc", Load("a", Const(0))),
                  )),
                  Store("a", Const(0), Const(2))])
        _, removed = dead_store_elimination(copy.deepcopy(fn))
        assert removed == 0

    def test_global_dse(self):
        fn = Function(
            name="t", globals_=[GlobalDecl("g")],
            body=[StoreGlobal("g", Const(1)),
                  StoreGlobal("g", Const(2)),
                  Let("acc", LoadGlobal("g"))])
        fn2, removed = dead_store_elimination(copy.deepcopy(fn))
        assert removed == 1
        assert Interpreter(fn2).run() == 2


class TestGeneratedCodeShape:
    def test_base_emits_zero_extension_pairs(self):
        asm = compile_function(copy.deepcopy(KERNELS[0]),
                               CodegenOptions.base())
        assert "slli" in asm and "srli" in asm
        assert "lrw" not in asm

    def test_optimized_uses_indexed_loads_or_pointers(self):
        import copy as c

        asm = compile_function(c.deepcopy(KERNELS[5]),  # gather_u32
                               CodegenOptions.optimized())
        assert "lrw" in asm or ".u" in asm

    def test_optimized_uses_mac(self):
        asm = compile_function(copy.deepcopy(KERNELS[1]),  # dot_mac
                               CodegenOptions.optimized())
        assert "mula" in asm

    def test_anchor_single_la_for_globals(self):
        fn = copy.deepcopy(KERNELS[2])  # global_counters
        base_asm = compile_function(copy.deepcopy(fn), CodegenOptions.base())
        opt_asm = compile_function(fn, CodegenOptions.optimized())
        # base: one address materialization per global access;
        # anchor: a single la + register-offset accesses.
        assert base_asm.count("la ") > opt_asm.count("la ")

    def test_optimized_crypto_uses_rotates(self):
        asm = compile_function(copy.deepcopy(KERNELS[4]),
                               CodegenOptions.optimized())
        assert "srriw" in asm


class TestUnrolling:
    def _loop_kernel(self, n=32):
        from repro.toolchain import ArrayDecl

        data = tuple((i * 5 + 1) % 97 for i in range(n))
        return Function(
            name="t", arrays=[ArrayDecl("a", n, 4, True, data)],
            body=[For("i", Const(n), (
                Let("acc", Bin("add", Var("acc"),
                               Load("a", Var("i")))),
                Let("acc", Bin("xor", Var("acc"),
                               Bin("shl", Var("i"), Const(1)))),
            ))])

    def test_unroll_preserves_semantics(self):
        from repro.toolchain.passes import unroll_loops

        kernel = self._loop_kernel()
        expected = Interpreter(copy.deepcopy(kernel)).run()
        unrolled, count = unroll_loops(copy.deepcopy(kernel), factor=4)
        assert count == 1
        assert Interpreter(unrolled).run() == expected

    def test_unrolled_code_compiles_and_matches(self):
        from repro.toolchain.passes import unroll_loops

        kernel = self._loop_kernel()
        expected = Interpreter(copy.deepcopy(kernel)).run()
        unrolled, _ = unroll_loops(copy.deepcopy(kernel), factor=4)
        assert run_compiled(unrolled, CodegenOptions.optimized()) == expected
        assert run_compiled(unrolled, CodegenOptions.base()) == expected

    def test_non_divisible_count_untouched(self):
        from repro.toolchain.passes import unroll_loops

        kernel = self._loop_kernel(n=30)
        _, count = unroll_loops(kernel, factor=4)
        assert count == 0

    def test_nested_loops_inner_only(self):
        from repro.toolchain import ArrayDecl
        from repro.toolchain.passes import unroll_loops

        fn = Function(name="t", arrays=[ArrayDecl("a", 16, 8)], body=[
            For("i", Const(4), (
                For("j", Const(4), (
                    Let("acc", Bin("add", Var("acc"),
                                   Bin("mul", Var("i"), Var("j")))),
                )),
            ))])
        expected = Interpreter(copy.deepcopy(fn)).run()
        unrolled, count = unroll_loops(copy.deepcopy(fn), factor=4)
        assert count == 1  # only the inner loop (the outer now nests one)
        assert Interpreter(unrolled).run() == expected

    def test_unroll_reduces_dynamic_branches(self):
        from repro.sim import Emulator
        from repro.toolchain import build_program
        from repro.toolchain.passes import unroll_loops

        kernel = self._loop_kernel(n=64)
        rolled_prog = build_program(copy.deepcopy(kernel),
                                    CodegenOptions.optimized())
        unrolled_fn, _ = unroll_loops(copy.deepcopy(kernel), factor=4)
        unrolled_prog = build_program(unrolled_fn,
                                      CodegenOptions.optimized())

        def branch_count(program):
            emu = Emulator(program)
            return sum(1 for dyn in emu.trace()
                       if dyn.inst.iclass.value == "branch")

        assert branch_count(unrolled_prog) < branch_count(rolled_prog)
