"""RVC expand/compress tests."""

import pytest
from hypothesis import given, strategies as st

from repro.isa.compressed import compress, expand, is_compressed
from repro.isa.instructions import Instruction, SPECS, compute_operands


def make(mnemonic, **kw):
    inst = Instruction(spec=SPECS[mnemonic], **kw)
    compute_operands(inst)
    return inst


def roundtrip(inst):
    half = compress(inst)
    assert half is not None, f"{inst.mnemonic} should compress"
    assert is_compressed(half)
    out = expand(half)
    assert out.size == 2
    return out


class TestCompressRoundtrip:
    def test_c_addi(self):
        out = roundtrip(make("addi", rd=5, rs1=5, imm=-7))
        assert (out.mnemonic, out.rd, out.rs1, out.imm) == ("addi", 5, 5, -7)

    def test_c_li(self):
        out = roundtrip(make("addi", rd=9, rs1=0, imm=31))
        assert (out.rd, out.rs1, out.imm) == (9, 0, 31)

    def test_c_lui(self):
        out = roundtrip(make("lui", rd=5, imm=7 << 12))
        assert out.imm == 7 << 12
        out = roundtrip(make("lui", rd=5, imm=-(4 << 12)))
        assert out.imm == -(4 << 12)

    def test_c_addi16sp(self):
        out = roundtrip(make("addi", rd=2, rs1=2, imm=-256))
        assert (out.rd, out.imm) == (2, -256)

    def test_c_addi4spn(self):
        out = roundtrip(make("addi", rd=10, rs1=2, imm=40))
        assert (out.rd, out.rs1, out.imm) == (10, 2, 40)

    def test_c_mv_add(self):
        mv = roundtrip(make("add", rd=5, rs1=0, rs2=6))
        assert (mv.rd, mv.rs1, mv.rs2) == (5, 0, 6)
        add = roundtrip(make("add", rd=5, rs1=5, rs2=6))
        assert (add.rd, add.rs1, add.rs2) == (5, 5, 6)

    @pytest.mark.parametrize("mn", ["sub", "xor", "or", "and", "subw", "addw"])
    def test_c_alu(self, mn):
        out = roundtrip(make(mn, rd=9, rs1=9, rs2=10))
        assert (out.mnemonic, out.rd, out.rs2) == (mn, 9, 10)

    @pytest.mark.parametrize("mn,shamt", [("slli", 13), ("srli", 40),
                                          ("srai", 63)])
    def test_c_shifts(self, mn, shamt):
        reg = 5 if mn == "slli" else 9
        out = roundtrip(make(mn, rd=reg, rs1=reg, imm=shamt))
        assert (out.mnemonic, out.imm) == (mn, shamt)

    def test_c_loads_stores(self):
        lw = roundtrip(make("lw", rd=9, rs1=10, imm=64))
        assert (lw.mnemonic, lw.imm) == ("lw", 64)
        ld = roundtrip(make("ld", rd=9, rs1=10, imm=248))
        assert (ld.mnemonic, ld.imm) == ("ld", 248)
        sw = roundtrip(make("sw", rs1=10, rs2=9, imm=124))
        assert (sw.mnemonic, sw.imm) == ("sw", 124)
        sd = roundtrip(make("sd", rs1=10, rs2=9, imm=8))
        assert (sd.mnemonic, sd.imm) == ("sd", 8)

    def test_c_sp_relative(self):
        lwsp = roundtrip(make("lw", rd=7, rs1=2, imm=252))
        assert (lwsp.rs1, lwsp.imm) == (2, 252)
        ldsp = roundtrip(make("ld", rd=7, rs1=2, imm=504))
        assert (ldsp.rs1, ldsp.imm) == (2, 504)
        swsp = roundtrip(make("sw", rs1=2, rs2=7, imm=252))
        assert (swsp.rs1, swsp.imm) == (2, 252)
        sdsp = roundtrip(make("sd", rs1=2, rs2=7, imm=504))
        assert (sdsp.rs1, sdsp.imm) == (2, 504)

    def test_c_j(self):
        out = roundtrip(make("jal", rd=0, imm=-2048))
        assert (out.rd, out.imm) == (0, -2048)
        out = roundtrip(make("jal", rd=0, imm=2046))
        assert out.imm == 2046

    def test_c_jr_jalr(self):
        jr = roundtrip(make("jalr", rd=0, rs1=1, imm=0))
        assert (jr.rd, jr.rs1) == (0, 1)
        jalr = roundtrip(make("jalr", rd=1, rs1=5, imm=0))
        assert (jalr.rd, jalr.rs1) == (1, 5)

    def test_c_branches(self):
        beqz = roundtrip(make("beq", rs1=9, rs2=0, imm=-64))
        assert (beqz.mnemonic, beqz.rs1, beqz.imm) == ("beq", 9, -64)
        bnez = roundtrip(make("bne", rs1=14, rs2=0, imm=254))
        assert (bnez.mnemonic, bnez.imm) == ("bne", 254)


class TestNotCompressible:
    @pytest.mark.parametrize("inst_kw", [
        ("addi", {"rd": 5, "rs1": 6, "imm": 1}),     # rd != rs1
        ("addi", {"rd": 5, "rs1": 5, "imm": 4000}),  # imm too big
        ("add", {"rd": 5, "rs1": 6, "rs2": 7}),      # three distinct regs
        ("sub", {"rd": 1, "rs1": 1, "rs2": 2}),      # non-prime regs
        ("lw", {"rd": 9, "rs1": 10, "imm": 3}),      # unaligned offset
        ("beq", {"rs1": 9, "rs2": 1, "imm": 8}),     # rs2 != x0
        ("jal", {"rd": 1, "imm": 100}),              # c.jal is RV32-only
        ("sd", {"rs1": 9, "rs2": 10, "imm": 260}),   # offset too big
    ])
    def test_returns_none(self, inst_kw):
        mn, kw = inst_kw
        assert compress(make(mn, **kw)) is None

    def test_mul_never_compresses(self):
        assert compress(make("mul", rd=9, rs1=9, rs2=10)) is None


@given(st.integers(0, 0xFFFF))
def test_expand_never_crashes_weirdly(halfword):
    """expand() either returns a well-formed base instruction or raises
    EncodingError — no other exception type escapes."""
    from repro.isa.encoding import EncodingError

    if not is_compressed(halfword):
        return
    try:
        inst = expand(halfword)
    except EncodingError:
        return
    assert inst.size == 2
    assert inst.mnemonic in SPECS


@given(st.sampled_from(["addi", "lw", "ld", "sw", "sd", "add", "sub", "and",
                        "or", "xor", "slli", "srli", "srai", "andi"]),
       st.integers(8, 15), st.integers(8, 15), st.integers(-32, 31))
def test_compress_expand_agree(mn, r1, r2, imm):
    """Whenever compress succeeds, expand returns the same instruction."""
    kw = {"rd": r1, "rs1": r1, "imm": imm & 63 if "sl" in mn or "sr" in mn
          else imm}
    if mn in ("add", "sub", "and", "or", "xor"):
        kw = {"rd": r1, "rs1": r1, "rs2": r2}
    elif mn in ("lw", "ld"):
        kw = {"rd": r1, "rs1": r2, "imm": (imm & 31) * 8}
    elif mn in ("sw", "sd"):
        kw = {"rs1": r1, "rs2": r2, "imm": (imm & 31) * 8}
    inst = make(mn, **kw)
    half = compress(inst)
    if half is None:
        return
    out = expand(half)
    assert out.mnemonic == inst.mnemonic
    assert (out.rd, out.rs1, out.rs2, out.imm) == \
        (inst.rd, inst.rs1, inst.rs2, inst.imm)
