"""Disassembler tests, including an assemble -> disassemble -> assemble
round-trip property over every encodable spec."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.asm import assemble
from repro.isa.disasm import disassemble, disassemble_program
from repro.isa.encoding import encode
from repro.isa.instructions import Instruction, SPECS, compute_operands


def make(mnemonic, **kw):
    inst = Instruction(spec=SPECS[mnemonic], **kw)
    compute_operands(inst)
    return inst


class TestScalarForms:
    @pytest.mark.parametrize("inst,expected", [
        (make("add", rd=10, rs1=11, rs2=12), "add a0, a1, a2"),
        (make("addi", rd=5, rs1=5, imm=-1), "addi t0, t0, -1"),
        (make("lw", rd=5, rs1=2, imm=8), "lw t0, 8(sp)"),
        (make("sd", rs1=10, rs2=9, imm=-16), "sd s1, -16(a0)"),
        (make("lui", rd=10, imm=0x12345 << 12), "lui a0, 74565"),
        (make("slli", rd=5, rs1=6, imm=32), "slli t0, t1, 32"),
        (make("ecall"), "ecall"),
        (make("fadd.d", rd=10, rs1=11, rs2=12), "fadd.d fa0, fa1, fa2"),
        (make("fcvt.w.d", rd=10, rs1=11), "fcvt.w.d a0, fa1"),
        (make("amoadd.w", rd=5, rs1=6, rs2=7), "amoadd.w t0, t2, (t1)"),
        (make("lr.d", rd=5, rs1=6), "lr.d t0, (t1)"),
        (make("csrrw", rd=5, rs1=6, imm=0x305), "csrrw t0, mtvec, t1"),
        (make("mula", rd=10, rs1=11, rs2=12), "mula a0, a1, a2"),
        (make("lrw", rd=10, rs1=11, rs2=12, aux=2), "lrw a0, a1, a2, 2"),
        (make("srri", rd=10, rs1=11, imm=7), "srri a0, a1, 7"),
    ])
    def test_rendering(self, inst, expected):
        assert disassemble(inst) == expected

    def test_branch_with_pc(self):
        inst = make("beq", rs1=5, rs2=6, imm=-8)
        assert disassemble(inst, pc=0x1000) == "beq t0, t1, 0xff8"

    def test_branch_without_pc(self):
        inst = make("bne", rs1=5, rs2=6, imm=16)
        assert ". + 16" in disassemble(inst)


class TestVectorForms:
    def test_vadd_vv(self):
        assert disassemble(make("vadd.vv", rd=1, rs2=2, rs1=3, aux=1)) \
            == "vadd.vv v1, v2, v3"

    def test_masked(self):
        assert disassemble(make("vadd.vv", rd=1, rs2=2, rs1=3, aux=0)) \
            == "vadd.vv v1, v2, v3, v0.t"

    def test_mac_operand_order(self):
        assert disassemble(make("vmacc.vv", rd=4, rs1=5, rs2=6, aux=1)) \
            == "vmacc.vv v4, v5, v6"

    def test_vsetvli(self):
        from repro.asm.assembler import encode_vtype

        inst = make("vsetvli", rd=5, rs1=10, imm=encode_vtype(32, 2))
        assert disassemble(inst) == "vsetvli t0, a0, e32, m2"

    def test_vector_load(self):
        assert disassemble(make("vle32.v", rd=1, rs1=10, aux=1)) \
            == "vle32.v v1, (a0)"


class TestProgramDisassembly:
    def test_listing(self):
        program = assemble("""
        _start:
            li t0, 3
            add t1, t0, t0
            li a7, 93
            ecall
        """)
        listing = disassemble_program(program)
        assert len(listing) == 4  # li -> addi; add; li -> addi; ecall
        assert any("ecall" in line for line in listing)
        assert all(line.startswith("0x") for line in listing)

    def test_compressed_listing_sizes(self):
        program = assemble("_start:\nli t0, 3\nadd t1, t0, t0\n",
                           compress=True)
        listing = disassemble_program(program)
        assert len(listing) == 2


@settings(max_examples=150, deadline=None)
@given(st.sampled_from(sorted(SPECS)), st.integers(1, 31),
       st.integers(1, 31), st.integers(0, 15))
def test_disasm_reassembles_to_same_encoding(mnemonic, rd, rs1, imm4):
    """encode(asm(disasm(inst))) == encode(inst) for register forms."""
    spec = SPECS[mnemonic]
    if spec.fmt in ("B", "J", "U", "VSETVLI"):
        return  # target/label forms tested separately
    aux = 0 if spec.fmt == "AMO" else 1  # aq/rl qualifiers not rendered
    inst = make(mnemonic, rd=rd, rs1=rs1, rs2=rs1, rs3=rd, imm=imm4 * 2,
                aux=aux)
    text = disassemble(inst)
    word = encode(inst)
    program = assemble(".text\n" + text + "\n")
    reassembled = int.from_bytes(program.text[:4], "little")
    assert reassembled == word, (text, hex(word), hex(reassembled))
