"""Encode/decode round-trip tests for the 32-bit formats."""

import pytest
from hypothesis import given, strategies as st

from repro.isa.encoding import EncodingError, decode_word, encode
from repro.isa.instructions import Instruction, SPECS, compute_operands


def make(mnemonic, **kw):
    inst = Instruction(spec=SPECS[mnemonic], **kw)
    compute_operands(inst)
    return inst


def roundtrip(inst):
    return decode_word(encode(inst))


class TestBasicFormats:
    def test_r_type(self):
        out = roundtrip(make("add", rd=1, rs1=2, rs2=3))
        assert (out.mnemonic, out.rd, out.rs1, out.rs2) == ("add", 1, 2, 3)

    def test_i_type_negative_imm(self):
        out = roundtrip(make("addi", rd=10, rs1=11, imm=-42))
        assert out.imm == -42

    def test_i_type_imm_bounds(self):
        assert roundtrip(make("addi", rd=1, rs1=1, imm=2047)).imm == 2047
        assert roundtrip(make("addi", rd=1, rs1=1, imm=-2048)).imm == -2048
        with pytest.raises(EncodingError):
            encode(make("addi", rd=1, rs1=1, imm=2048))

    def test_load_store(self):
        load = roundtrip(make("lw", rd=5, rs1=6, imm=-8))
        assert (load.mnemonic, load.imm) == ("lw", -8)
        store = roundtrip(make("sd", rs1=7, rs2=8, imm=24))
        assert (store.mnemonic, store.rs1, store.rs2, store.imm) == \
            ("sd", 7, 8, 24)

    def test_branch_offsets(self):
        for imm in (-4096, -2, 0, 2, 4094):
            out = roundtrip(make("beq", rs1=1, rs2=2, imm=imm))
            assert out.imm == imm
        with pytest.raises(EncodingError):
            encode(make("beq", rs1=1, rs2=2, imm=3))

    def test_jal_offsets(self):
        for imm in (-(1 << 20), -2, 0, 2, (1 << 20) - 2):
            assert roundtrip(make("jal", rd=1, imm=imm)).imm == imm

    def test_lui_auipc(self):
        out = roundtrip(make("lui", rd=3, imm=0x12345 << 12))
        assert out.imm == 0x12345 << 12
        neg = roundtrip(make("lui", rd=3, imm=-4096))
        assert neg.imm == -4096

    def test_shifts_rv64(self):
        for mn in ("slli", "srli", "srai"):
            out = roundtrip(make(mn, rd=1, rs1=2, imm=63))
            assert (out.mnemonic, out.imm) == (mn, 63)

    def test_word_shifts(self):
        for mn in ("slliw", "srliw", "sraiw"):
            out = roundtrip(make(mn, rd=1, rs1=2, imm=31))
            assert (out.mnemonic, out.imm) == (mn, 31)

    def test_mul_div(self):
        for mn in ("mul", "mulh", "div", "rem", "mulw", "divw", "remuw"):
            assert roundtrip(make(mn, rd=3, rs1=4, rs2=5)).mnemonic == mn

    def test_system(self):
        assert roundtrip(make("ecall")).mnemonic == "ecall"
        assert roundtrip(make("ebreak")).mnemonic == "ebreak"
        assert roundtrip(make("mret")).mnemonic == "mret"

    def test_csr(self):
        out = roundtrip(make("csrrw", rd=1, rs1=2, imm=0x305))
        assert (out.mnemonic, out.imm) == ("csrrw", 0x305)
        outi = roundtrip(make("csrrwi", rd=1, imm=0x300, aux=13))
        assert (outi.imm, outi.aux) == (0x300, 13)


class TestAtomics:
    def test_amo_roundtrip(self):
        for mn in ("amoadd.w", "amoswap.d", "amomaxu.w", "lr.d", "sc.w"):
            out = roundtrip(make(mn, rd=1, rs1=2,
                                 rs2=0 if mn.startswith("lr") else 3))
            assert out.mnemonic == mn

    def test_aq_rl_bits(self):
        out = roundtrip(make("amoadd.w", rd=1, rs1=2, rs2=3, aux=3))
        assert out.aux == 3


class TestFloat:
    @pytest.mark.parametrize("mn", [
        "fadd.s", "fsub.d", "fmul.s", "fdiv.d", "fsqrt.s", "fsgnj.d",
        "fmin.s", "fmax.d", "feq.s", "flt.d", "fle.s", "fclass.d",
        "fmadd.s", "fnmadd.d", "fcvt.w.s", "fcvt.d.lu", "fcvt.s.d",
        "fmv.x.d", "fmv.w.x",
    ])
    def test_roundtrip(self, mn):
        out = roundtrip(make(mn, rd=1, rs1=2, rs2=3, rs3=4))
        assert out.mnemonic == mn

    def test_float_register_files(self):
        inst = make("fadd.d", rd=1, rs1=2, rs2=3)
        assert {r.file for r in inst.srcs} == {"f"}
        assert inst.dests[0].file == "f"

    def test_fcvt_crosses_files(self):
        to_int = make("fcvt.w.d", rd=1, rs1=2)
        assert to_int.dests[0].file == "x"
        assert to_int.srcs[0].file == "f"


class TestVector:
    @pytest.mark.parametrize("mn", [
        "vadd.vv", "vadd.vx", "vadd.vi", "vmul.vv", "vmacc.vx",
        "vwmul.vv", "vredsum.vs", "vfadd.vv", "vfmacc.vf", "vmseq.vv",
        "vslideup.vi", "vrgather.vv", "vmv.v.x", "vmv.x.s",
        "vle32.v", "vse64.v", "vlse16.v", "vsse8.v", "vsetvli", "vsetvl",
    ])
    def test_roundtrip(self, mn):
        out = roundtrip(make(mn, rd=1, rs1=2, rs2=3, rs3=1, imm=5, aux=1))
        assert out.mnemonic == mn

    def test_mask_bit(self):
        masked = roundtrip(make("vadd.vv", rd=1, rs1=2, rs2=3, aux=0))
        assert masked.aux == 0
        assert any(r == ("v", 0) for r in masked.srcs)
        unmasked = roundtrip(make("vadd.vv", rd=1, rs1=2, rs2=3, aux=1))
        assert unmasked.aux == 1
        assert not any(r == ("v", 0) for r in unmasked.srcs)

    def test_vmacc_reads_dest(self):
        inst = make("vmacc.vv", rd=4, rs1=2, rs2=3, aux=1)
        assert ("v", 4) in [tuple(r) for r in inst.srcs]


class TestXtExtensions:
    @pytest.mark.parametrize("mn", [
        "lrw", "lrd", "lrbu", "lrw.u", "srw", "srd.u", "addsl",
        "ext", "extu", "ff0", "ff1", "rev", "revw", "tstnbz",
        "srri", "srriw", "mula", "muls", "mulaw", "mulah",
    ])
    def test_roundtrip(self, mn):
        out = roundtrip(make(mn, rd=1, rs1=2, rs2=3, rs3=1, imm=5, aux=2))
        assert out.mnemonic == mn

    def test_indexed_load_scale(self):
        out = roundtrip(make("lrw", rd=1, rs1=2, rs2=3, aux=2))
        assert out.aux == 2

    def test_bitfield_extract_imm(self):
        out = roundtrip(make("ext", rd=1, rs1=2, imm=(15 << 6) | 8))
        assert out.imm >> 6 == 15
        assert out.imm & 0x3F == 8

    def test_mac_reads_dest(self):
        inst = make("mula", rd=4, rs1=2, rs2=3)
        assert ("x", 4) in [tuple(r) for r in inst.srcs]


class TestDecodeErrors:
    def test_unknown_opcode(self):
        with pytest.raises(EncodingError):
            decode_word(0x0000007F)

    def test_bad_funct(self):
        with pytest.raises(EncodingError):
            decode_word((0x7F << 25) | 0x33)  # OP with bogus funct7


@given(st.sampled_from(sorted(SPECS)), st.integers(1, 31),
       st.integers(1, 31), st.integers(1, 31), st.integers(0, 15))
def test_roundtrip_property(mnemonic, rd, rs1, rs2, imm4):
    """Every spec round-trips through encode/decode for small operands."""
    imm5 = imm4 * 2  # keep branch/jump offsets even
    inst = make(mnemonic, rd=rd, rs1=rs1, rs2=rs2, rs3=rs1, imm=imm5, aux=1)
    word = encode(inst)
    out = decode_word(word)
    assert out.mnemonic == mnemonic
    assert encode(out) == word
