"""Assembler <-> disassembler round-trip over every bundled workload.

Every instruction in every workload's text section must survive
``decode -> disassemble -> reassemble -> decode`` with identical
fields.  This pins the two toolchain halves to one another over the
full ISA surface the workloads actually exercise (RV64GC, vector,
and the XT-910 custom extensions), not just the hand-picked forms in
``test_disasm.py``.
"""

import pytest

from repro.asm import assemble
from repro.isa.classify import iter_parcels
from repro.isa.disasm import disassemble
from repro.isa.encoding import decode_word
from repro.workloads import all_workloads

WORKLOADS = {w.name: w for w in all_workloads()}


def _roundtrip(name, addr, inst):
    text = disassemble(inst, pc=addr)
    program = assemble(".text\n_start:\n    " + text + "\n",
                       compress=False)
    word = int.from_bytes(program.text[:4], "little")
    redecoded = decode_word(word)

    context = f"{name} @ {addr:#x}: {text!r}"
    assert redecoded.spec.mnemonic == inst.spec.mnemonic, context
    for field in ("rd", "rs1", "rs2", "rs3"):
        assert getattr(redecoded, field) == getattr(inst, field), \
            f"{context}: {field}"
    expected_imm = inst.imm
    if inst.spec.fmt in ("B", "J"):
        # disassembly renders the absolute target; reassembled at the
        # section base the offset shifts by (addr - text_base)
        expected_imm = (addr + inst.imm) - program.text_base
    assert redecoded.imm == expected_imm, f"{context}: imm"
    if inst.spec.fmt != "AMO":  # aq/rl qualifiers are not rendered
        assert redecoded.aux == inst.aux, f"{context}: aux"


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_workload_text_roundtrips(name):
    program = WORKLOADS[name].program()
    checked = 0
    for addr, inst, half in iter_parcels(program):
        assert inst is not None, (
            f"{name}: undecodable parcel {half:#06x} at {addr:#x}")
        _roundtrip(name, addr, inst)
        checked += 1
    assert checked > 0


def test_compressed_and_wide_agree():
    """A compressed program and its uncompressed twin disassemble to
    the same instruction stream (modulo encoding size)."""
    workload = WORKLOADS["dhrystone-like"]
    wide = assemble(workload.source, compress=False)
    tight = assemble(workload.source, compress=True)
    def stream(program):
        # branch/jump offsets legitimately differ between the two
        # layouts, and alignment padding nops may too -- compare the
        # mnemonic + register-operand shape only
        out = []
        for _addr, inst, _half in iter_parcels(program):
            if inst is None or inst.spec.mnemonic == "addi" and \
                    inst.rd == 0 and inst.rs1 == 0 and inst.imm == 0:
                continue
            out.append((inst.spec.mnemonic, inst.rd, inst.rs1,
                        inst.rs2, inst.rs3))
        return out

    assert stream(wide) == stream(tight)
