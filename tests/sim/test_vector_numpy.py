"""Differential tests: numpy-batched vector engine vs the per-element
reference engine.

The batched engine (``repro.sim.exec_vector``, the default) is only
allowed to exist because it is bit-identical to the per-element
reference interpreter.  These tests pin that down three ways:

1. a hypothesis differential — random SEW/LMUL/vl/mask/data integer
   programs run under both engines must leave identical vector
   register files, memory and exit codes;
2. deterministic edge cases that force the batched engine's guarded
   fallback paths (cross-page accesses, non-positive strides,
   overlapping scatter indices, wrapped register groups, vl=0);
3. tier equivalence — the same workload across tiers 1/2/3 under both
   engines produces one unique fingerprint.

Plus the plumbing: engine selection, tier-3 SEW/LMUL specialization,
and the ``sim.vector.*`` metrics namespace.
"""

from __future__ import annotations

import hashlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asm import assemble
from repro.harness.runner import run_on_core
from repro.obs.metrics import collect_run
from repro.sim import Emulator
from repro.sim import exec_vector
from repro.workloads import vec_gather, vec_mac16, vec_memcpy

EXIT = """
    li a0, 0
    li a7, 93
    ecall
"""

#: element-wise .vv ops safe on arbitrary bit patterns (shifts mask
#: their amount with ``& (sew-1)`` in both engines; div/rem excluded —
#: they share the reference implementation by construction).
INT_OPS = ["vadd.vv", "vsub.vv", "vand.vv", "vor.vv", "vxor.vv",
           "vmul.vv", "vmin.vv", "vmax.vv", "vminu.vv", "vmaxu.vv",
           "vsll.vv", "vsrl.vv", "vsra.vv", "vmseq.vv", "vmsltu.vv",
           "vrgather.vv", "vmerge.vvm"]


@pytest.fixture(autouse=True)
def _numpy_engine():
    """Every test starts and ends on the default batched engine."""
    exec_vector.select_engine("numpy")
    yield
    exec_vector.select_engine("numpy")


def _run_engine(source: str, engine: str, max_steps: int = 500_000):
    """Assemble and run under *engine*; restore the numpy engine."""
    exec_vector.select_engine(engine)
    try:
        emulator = Emulator(assemble(source, compress=False))
        emulator.run(max_steps)
    finally:
        exec_vector.select_engine("numpy")
    return emulator


def _state_fingerprint(emulator) -> tuple:
    """Vector register file + data memory + exit code."""
    program = emulator.program
    data_len = max(len(program.data), 8) + 256
    mem = emulator.state.memory.load_bytes(program.data_base, data_len)
    return (bytes(emulator.state.vbuf),
            hashlib.sha256(bytes(mem)).hexdigest(),
            emulator.exit_code or 0)


def _differential(source: str) -> None:
    ref = _state_fingerprint(_run_engine(source, "ref"))
    np_ = _state_fingerprint(_run_engine(source, "numpy"))
    assert np_ == ref


# -- hypothesis differential -------------------------------------------------

def _vector_program(op: str, sew: int, lmul: int, avl: int,
                    masked: bool, data: bytes, mask: bytes) -> str:
    """One random vector op: load mask + operands + a dst preload (so
    tail-undisturbed lanes are visible), apply, store, exit."""
    group = 16 * lmul
    d = ", ".join(str(v) for v in data)
    mk = ", ".join(str(v) for v in mask)
    if op == "vmerge.vvm":
        # vmerge's encoding uses the mask register as the selector
        apply = "vmerge.vvm v24, v8, v16, v0"
    else:
        apply = f"{op} v24, v8, v16" + (", v0.t" if masked else "")
    return f"""
    .data
    .align 3
vdata: .byte {d}
maskd: .byte {mk}
out:   .zero {group}
    .text
_start:
    li t0, 16
    vsetvli t3, t0, e8, m1
    la t2, maskd
    vle8.v v0, (t2)
    li t0, {avl}
    vsetvli t3, t0, e{sew}, m{lmul}
    la t1, vdata
    vle{sew}.v v8, (t1)
    addi t1, t1, {group}
    vle{sew}.v v16, (t1)
    addi t1, t1, {group}
    vle{sew}.v v24, (t1)
    {apply}
    la t4, out
    vse{sew}.v v24, (t4)
{EXIT}"""


@settings(max_examples=60, deadline=None)
@given(op=st.sampled_from(INT_OPS),
       sew=st.sampled_from([8, 16, 32, 64]),
       lmul=st.sampled_from([1, 2, 4, 8]),
       avl=st.integers(min_value=0, max_value=160),
       masked=st.booleans(),
       data=st.binary(min_size=384, max_size=384),
       mask=st.binary(min_size=16, max_size=16))
def test_random_int_ops_bit_identical(op, sew, lmul, avl, masked,
                                      data, mask):
    _differential(_vector_program(op, sew, lmul, avl, masked,
                                  data, mask))


@settings(max_examples=20, deadline=None)
@given(op=st.sampled_from(["vfadd.vv", "vfsub.vv", "vfmul.vv",
                           "vfmin.vv", "vfmax.vv", "vfmacc.vv"]),
       sew=st.sampled_from([32, 64]),
       lanes=st.lists(st.integers(min_value=-512, max_value=512),
                      min_size=48, max_size=48),
       avl=st.integers(min_value=0, max_value=40),
       masked=st.booleans(),
       mask=st.binary(min_size=16, max_size=16))
def test_random_fp_ops_bit_identical(op, sew, lanes, avl, masked, mask):
    """FP differential on exactly-representable small values (the
    workload suite covers rounding; NaN payloads are out of scope)."""
    import struct
    fmt = "<f" if sew == 32 else "<d"
    raw = b"".join(struct.pack(fmt, float(v) / 8.0) for v in lanes)
    data = (raw * ((384 // len(raw)) + 1))[:384]
    _differential(_vector_program(op, sew, 2, avl, masked, data, mask))


# -- deterministic fallback edges --------------------------------------------

def test_cross_page_load_store():
    """Unit-stride access straddling a page boundary takes the batched
    engine's span fallback; results must still match the reference."""
    src = f"""
    .data
    .align 3
vdata: .byte {", ".join(str((i * 37) & 0xFF) for i in range(64))}
big:   .zero 8192
out:   .zero 64
    .text
_start:
    la t1, big
    li t2, 8191
    add t1, t1, t2
    li t2, -4096
    and t1, t1, t2             # t1 = page-aligned address inside big
    addi t1, t1, -20           # store will straddle the boundary
    li t0, 64
    vsetvli t3, t0, e8, m4
    la t2, vdata
    vle8.v v8, (t2)
    vse8.v v8, (t1)            # cross-page store
    vle8.v v16, (t1)           # cross-page load back
    la t4, out
    vse8.v v16, (t4)
{EXIT}"""
    _differential(src)


def test_misaligned_base():
    src = f"""
    .data
    .align 3
vdata: .byte {", ".join(str((i * 11) & 0xFF) for i in range(68))}
out:   .zero 64
    .text
_start:
    li t0, 16
    vsetvli t3, t0, e32, m4
    la t1, vdata
    addi t1, t1, 1             # deliberately misaligned e32 base
    vle32.v v8, (t1)
    la t4, out
    vse32.v v8, (t4)
{EXIT}"""
    _differential(src)


@pytest.mark.parametrize("stride", [0, -8, 4])
def test_strided_load_edge_strides(stride):
    """stride<=0 forces the per-element path; stride<width overlaps."""
    src = f"""
    .data
    .align 3
vdata: .byte {", ".join(str((i * 13) & 0xFF) for i in range(128))}
out:   .zero 32
    .text
_start:
    li t0, 4
    vsetvli t3, t0, e64, m1
    la t1, vdata
    addi t1, t1, 64            # room for negative strides
    li t2, {stride}
    vlse64.v v8, (t1), t2
    la t4, out
    vse64.v v8, (t4)
{EXIT}"""
    _differential(src)


def test_scatter_duplicate_indices():
    """Overlapping scatter lanes must apply in element order (the
    batched engine's disjointness guard falls back to the exact
    sequential path)."""
    src = f"""
    .data
    .align 3
g_idx: .word 0, 4, 0, 4        # two pairs collide
g_val: .word 111, 222, 333, 444
g_out: .zero 16
result: .dword 0
    .text
_start:
    li t0, 4
    vsetvli t3, t0, e32, m1
    la t1, g_idx
    vle32.v v1, (t1)
    la t1, g_val
    vle32.v v2, (t1)
    la t1, g_out
    vsxei32.v v2, (t1), v1
    lwu t5, 0(t1)              # must be 333 (last write wins)
    lwu t6, 4(t1)              # must be 444
    la t4, result
    sd t5, 0(t4)
    sd t6, 8(t4)
{EXIT}"""
    _differential(src)
    emulator = _run_engine(src, "numpy")
    base = emulator.program.symbol("result")
    assert emulator.state.memory.load_int(base, 8) == 333
    assert emulator.state.memory.load_int(base + 8, 8) == 444


def test_indexed_gather_matches_reference():
    src = f"""
    .data
    .align 3
g_tab: .word {", ".join(str((i * 97) & 0xFFFF) for i in range(32))}
g_idx: .word {", ".join(str(((i * 7) % 32) * 4) for i in range(32))}
out:   .zero 128
    .text
_start:
    li t0, 32
    vsetvli t3, t0, e32, m8
    la t1, g_idx
    vle32.v v8, (t1)
    la t1, g_tab
    vlxei32.v v16, (t1), v8
    la t4, out
    vse32.v v16, (t4)
{EXIT}"""
    _differential(src)


def test_vl_zero_is_a_noop_on_lanes():
    src = f"""
    .data
    .align 3
vdata: .byte {", ".join(str(i) for i in range(64))}
out:   .byte {", ".join("170" for _ in range(16))}
    .text
_start:
    li t0, 16
    vsetvli t3, t0, e32, m1
    la t1, vdata
    vle32.v v8, (t1)
    li t0, 0
    vsetvli t3, t0, e32, m1    # vl = 0
    vadd.vv v8, v8, v8
    la t4, out
    vse32.v v8, (t4)           # stores nothing
{EXIT}"""
    _differential(src)
    emulator = _run_engine(src, "numpy")
    base = emulator.program.symbol("out")
    assert emulator.state.memory.load_bytes(base, 16) == b"\xaa" * 16


def test_wrapped_register_group_falls_back():
    """An m4 group starting at v30 wraps past v31; the batched engine
    must delegate to the reference handler and still agree with it."""
    src = f"""
    .data
    .align 3
vdata: .byte {", ".join(str((i * 5) & 0xFF) for i in range(128))}
    .text
_start:
    li t0, 16
    vsetvli t3, t0, e32, m4
    la t1, vdata
    vle32.v v8, (t1)
    addi t1, t1, 64
    vle32.v v12, (t1)
    vadd.vv v30, v8, v12       # dst group v30..v33 wraps to v0/v1
{EXIT}"""
    _differential(src)
    emulator = _run_engine(src, "numpy")
    assert emulator.state.vec_counters["fallback_ops"] >= 1


# -- tier equivalence --------------------------------------------------------

@pytest.mark.parametrize("workload_fn", [
    lambda: vec_memcpy(n=40, passes=2),
    lambda: vec_gather(n=32, passes=2),
])
def test_tiers_and_engines_one_fingerprint(workload_fn):
    """tiers 1/2/3 x engines {ref, numpy} -> a single fingerprint."""
    workload = workload_fn()
    prints = set()
    for engine in ("ref", "numpy"):
        for tier in (1, 2, 3):
            exec_vector.select_engine(engine)
            try:
                emulator = Emulator(workload.program())
                emulator.run(tier=tier)
            finally:
                exec_vector.select_engine("numpy")
            prints.add(_state_fingerprint(emulator))
    assert len(prints) == 1


# -- engine selection & specialization ---------------------------------------

def test_select_engine_rejects_unknown():
    with pytest.raises(ValueError):
        exec_vector.select_engine("simd-9000")
    assert exec_vector.active_engine() == "numpy"


def test_select_engine_normalizes_and_round_trips():
    exec_vector.select_engine("  REF ")
    assert exec_vector.active_engine() == "ref"
    exec_vector.select_engine("")       # empty -> default
    assert exec_vector.active_engine() == "numpy"


def test_specialize_only_on_numpy_engine():
    assert callable(exec_vector.specialize("vadd.vv", 32, 1))
    assert exec_vector.specialize("not-an-op", 32, 1) is None
    exec_vector.select_engine("ref")
    assert exec_vector.specialize("vadd.vv", 32, 1) is None


def test_tier3_uses_specialized_handlers():
    emulator = Emulator(vec_mac16().program())
    emulator.run(tier=3)
    counters = emulator.state.vec_counters
    assert counters["specialized_ops"] > 0
    assert counters["fallback_ops"] == 0


def test_counters_and_metrics_namespace():
    emulator = Emulator(vec_mac16().program())
    emulator.run()
    merged = emulator.counters()
    assert merged["vector_batched_ops"] > 0
    assert merged["vector_elems_total"] >= merged["vector_elems_active"]

    registry = collect_run(run_on_core(vec_mac16().program(), "xt910"))
    assert registry["sim.vector.batched_ops"] > 0
    assert "sim.vector.elems_active" in registry.keys()
    assert not any(key.startswith("emu.vector_")
                   for key in registry.keys())


def test_masked_ops_counted():
    src = """
    .text
_start:
    li t0, 4
    vsetvli t3, t0, e32, m1
    li t2, 0b0101
    vmv.s.x v0, t2
    vmv.v.i v1, 7
    vmv.v.i v2, 9
    vadd.vv v3, v1, v2, v0.t
""" + EXIT
    emulator = _run_engine(src, "numpy")
    counters = emulator.state.vec_counters
    assert counters["masked_ops"] >= 1
    assert counters["elems_active"] < counters["elems_total"]
