"""Functional semantics tests for the scalar ISA."""

from hypothesis import given, settings, strategies as st

from repro.asm import assemble
from repro.sim import Emulator

from .conftest import run_asm


def result_of(body: str) -> int:
    """Run a snippet and return a0 as an unsigned exit-style value."""
    return run_asm(body).exit_code


class TestIntegerAlu:
    def test_add_sub(self, run):
        assert run("li a0, 40\naddi a0, a0, 2\n").exit_code == 42
        assert run("li t0, 50\nli t1, 8\nsub a0, t0, t1\n").exit_code == 42

    def test_logic(self, run):
        assert run("li t0, 0xF0\nli t1, 0x0F\nor a0, t0, t1\n").exit_code == 0xFF
        assert run("li t0, 0xFF\nandi a0, t0, 0x0F\n").exit_code == 0x0F
        assert run("li t0, 0xFF\nxori a0, t0, 0xF0\n").exit_code == 0x0F

    def test_shifts(self, run):
        assert run("li a0, 1\nslli a0, a0, 6\n").exit_code == 64
        assert run("li a0, 64\nsrli a0, a0, 3\n").exit_code == 8
        assert run("li a0, -64\nsrai a0, a0, 3\nneg a0, a0\n").exit_code == 8

    def test_slt(self, run):
        assert run("li t0, -1\nli t1, 1\nslt a0, t0, t1\n").exit_code == 1
        assert run("li t0, -1\nli t1, 1\nsltu a0, t0, t1\n").exit_code == 0

    def test_32bit_word_ops(self, run):
        # addw wraps at 32 bits and sign extends
        code = """
        li t0, 0x7FFFFFFF
        li t1, 1
        addw t2, t0, t1      # 0x80000000 -> sign-extended negative
        srai a0, t2, 31      # all ones
        andi a0, a0, 1
        """
        assert run(code).exit_code == 1

    def test_sraiw_sign(self, run):
        code = """
        li t0, 0x80000000
        sraiw t1, t0, 4
        li t2, 0xF8000000
        sext.w t2, t2
        xor a0, t1, t2
        seqz a0, a0
        """
        assert run(code).exit_code == 1

    def test_lui_auipc(self, run):
        assert run("lui a0, 1\nsrli a0, a0, 12\n").exit_code == 1


class TestMulDiv:
    def test_mul(self, run):
        assert run("li t0, 6\nli t1, 7\nmul a0, t0, t1\n").exit_code == 42

    def test_mulh(self, run):
        code = """
        li t0, 0x100000000
        li t1, 0x100000000
        mulhu a0, t0, t1     # (2^32)^2 >> 64 = 1
        """
        assert run(code).exit_code == 1

    def test_div_rem(self, run):
        assert run("li t0, 43\nli t1, 5\ndiv a0, t0, t1\n").exit_code == 8
        assert run("li t0, 43\nli t1, 5\nrem a0, t0, t1\n").exit_code == 3

    def test_div_negative_truncates(self, run):
        assert run("li t0, -7\nli t1, 2\ndiv a0, t0, t1\nneg a0, a0\n"
                   ).exit_code == 3

    def test_div_by_zero(self, run):
        # div by zero => -1; remu by zero => dividend
        assert run("li t0, 5\nli t1, 0\ndiv a0, t0, t1\nseqz a0, a0\n"
                   ).exit_code == 0
        assert run("li t0, 5\nli t1, 0\nremu a0, t0, t1\n").exit_code == 5

    def test_div_overflow(self, run):
        code = """
        li t0, 1
        slli t0, t0, 63      # INT64_MIN
        li t1, -1
        div t2, t0, t1       # stays INT64_MIN
        xor a0, t2, t0
        seqz a0, a0
        """
        assert run(code).exit_code == 1

    def test_word_division(self, run):
        assert run("li t0, 100\nli t1, 7\ndivw a0, t0, t1\n").exit_code == 14
        assert run("li t0, 100\nli t1, 7\nremw a0, t0, t1\n").exit_code == 2


class TestLoadsStores:
    def test_widths_roundtrip(self, run):
        code = """
        .data
        buf: .zero 32
        .text
        la t0, buf
        li t1, -2
        sb t1, 0(t0)
        lb t2, 0(t0)         # -2
        lbu t3, 0(t0)        # 254
        add a0, t2, t3       # 252
        """
        assert run(code).exit_code == 252

    def test_unaligned_access(self, run):
        code = """
        .data
        buf: .dword 0x1122334455667788
        .text
        la t0, buf
        lw a0, 1(t0)         # unaligned: bytes 1..4
        li t1, 0x44556677
        xor a0, a0, t1
        seqz a0, a0
        """
        assert run(code).exit_code == 1

    def test_store_load_word_sign(self, run):
        code = """
        .data
        w: .zero 8
        .text
        la t0, w
        li t1, 0x80000001
        sw t1, 0(t0)
        lw t2, 0(t0)         # sign-extended negative
        bltz t2, ok
        li a0, 0
        j done
        ok:
        li a0, 1
        done:
        """
        assert run(code).exit_code == 1


class TestControlFlow:
    def test_loop_sum(self, run):
        code = """
        li t0, 100
        li t1, 0
        loop:
        add t1, t1, t0
        addi t0, t0, -1
        bnez t0, loop
        li t2, 5050
        xor a0, t1, t2
        seqz a0, a0
        """
        assert run(code).exit_code == 1

    def test_function_call(self, run):
        code = """
        _start:
            li a0, 5
            call double_it
            call double_it
            j finish
        double_it:
            slli a0, a0, 1
            ret
        finish:
        """
        assert run(code).exit_code == 20

    def test_indirect_jump(self, run):
        code = """
        _start:
            la t0, target
            jr t0
            li a0, 0
            j done
        target:
            li a0, 9
        done:
        """
        assert run(code).exit_code == 9

    def test_branch_comparisons(self, run):
        for op, a, b, expect in [
            ("blt", -1, 1, 1), ("blt", 1, -1, 0),
            ("bltu", 1, -1, 1),  # -1 unsigned is huge
            ("bge", 5, 5, 1), ("bgeu", 0, 1, 0),
        ]:
            code = f"""
            li t0, {a}
            li t1, {b}
            {op} t0, t1, yes
            li a0, 0
            j done
            yes: li a0, 1
            done:
            """
            assert run_asm(code).exit_code == expect, (op, a, b)


class TestAtomics:
    def test_amoadd(self, run):
        code = """
        .data
        .align 3
        counter: .dword 10
        .text
        la t0, counter
        li t1, 5
        amoadd.d t2, t1, (t0)   # t2 = 10, mem = 15
        ld t3, 0(t0)
        add a0, t2, t3          # 25
        """
        assert run(code).exit_code == 25

    def test_lr_sc_success(self, run):
        code = """
        .data
        .align 3
        cell: .dword 7
        .text
        la t0, cell
        lr.d t1, (t0)
        addi t1, t1, 1
        sc.d t2, t1, (t0)       # succeeds -> 0
        ld t3, 0(t0)
        seqz t2, t2
        add a0, t3, t2          # 8 + 1
        """
        assert run(code).exit_code == 9

    def test_sc_without_reservation_fails(self, run):
        code = """
        .data
        .align 3
        cell: .dword 7
        .text
        la t0, cell
        li t1, 99
        sc.d a0, t1, (t0)       # no reservation -> 1
        """
        assert run(code).exit_code == 1

    def test_amomax_signed(self, run):
        code = """
        .data
        .align 3
        cell: .dword -5
        .text
        la t0, cell
        li t1, 3
        amomax.d t2, t1, (t0)
        ld a0, 0(t0)            # max(-5, 3) = 3
        """
        assert run(code).exit_code == 3


class TestFloat:
    def test_double_arith(self, run):
        code = """
        .data
        a: .double 1.5
        b: .double 2.25
        .text
        la t0, a
        fld fa0, 0(t0)
        fld fa1, 8(t0)
        fadd.d fa2, fa0, fa1     # 3.75
        fmul.d fa3, fa2, fa1     # 8.4375
        li t1, 16
        fcvt.d.l fa4, t1
        fmul.d fa3, fa3, fa4     # 135
        fcvt.l.d a0, fa3
        """
        assert run(code).exit_code == 135

    def test_single_precision(self, run):
        code = """
        .data
        x: .float 0.5
        .text
        la t0, x
        flw fa0, 0(t0)
        fadd.s fa1, fa0, fa0      # 1.0
        fcvt.w.s a0, fa1
        """
        assert run(code).exit_code == 1

    def test_fsqrt(self, run):
        code = """
        li t0, 144
        fcvt.d.l fa0, t0
        fsqrt.d fa1, fa0
        fcvt.l.d a0, fa1
        """
        assert run(code).exit_code == 12

    def test_fmadd(self, run):
        code = """
        li t0, 3
        li t1, 4
        li t2, 5
        fcvt.d.l fa0, t0
        fcvt.d.l fa1, t1
        fcvt.d.l fa2, t2
        fmadd.d fa3, fa0, fa1, fa2   # 3*4+5 = 17
        fcvt.l.d a0, fa3
        """
        assert run(code).exit_code == 17

    def test_fcmp(self, run):
        code = """
        li t0, 1
        li t1, 2
        fcvt.d.l fa0, t0
        fcvt.d.l fa1, t1
        flt.d a0, fa0, fa1
        """
        assert run(code).exit_code == 1

    def test_fmin_fmax(self, run):
        code = """
        li t0, -3
        li t1, 7
        fcvt.d.l fa0, t0
        fcvt.d.l fa1, t1
        fmax.d fa2, fa0, fa1
        fmin.d fa3, fa0, fa1
        fsub.d fa4, fa2, fa3      # 7 - (-3) = 10
        fcvt.l.d a0, fa4
        """
        assert run(code).exit_code == 10

    def test_fsgnj(self, run):
        code = """
        li t0, 5
        fcvt.d.l fa0, t0
        fneg.d fa1, fa0
        fcvt.l.d t1, fa1          # -5
        neg a0, t1
        """
        assert run(code).exit_code == 5

    def test_fclass(self, run):
        code = """
        li t0, 1
        fcvt.d.l fa0, t0
        fclass.d a0, fa0          # positive normal => bit 6
        """
        assert run(code).exit_code == 1 << 6


class TestSystem:
    def test_csr_read_write(self, run):
        code = """
        li t0, 0x123
        csrw mscratch, t0
        csrr a0, mscratch
        """
        assert run(code).exit_code == 0x123

    def test_csr_set_clear(self, run):
        code = """
        li t0, 0xF0
        csrw mscratch, t0
        li t1, 0x0F
        csrs mscratch, t1
        li t2, 0xC0
        csrc mscratch, t2
        csrr a0, mscratch        # 0xF0 | 0x0F & ~0xC0 = 0x3F
        """
        assert run(code).exit_code == 0x3F

    def test_mhartid_readonly(self, run):
        code = """
        li t0, 55
        csrw mhartid, t0
        csrr a0, mhartid         # still 0
        """
        assert run(code).exit_code == 0

    def test_instret_counts(self, run):
        emu = run_asm("nop\nnop\nnop\nli a0, 0\n")
        assert emu.state.instret >= 4

    def test_write_syscall(self):
        program = assemble("""
        .data
        msg: .asciz "hello"
        .text
        la a1, msg
        li a2, 5
        li a0, 1
        li a7, 64
        ecall
        li a0, 0
        li a7, 93
        ecall
        """)
        emu = Emulator(program)
        emu.run()
        assert emu.stdout == "hello"


class TestXtExtensions:
    def test_indexed_load(self, run):
        code = """
        .data
        arr: .word 10, 20, 30, 40
        .text
        la t0, arr
        li t1, 3
        lrw a0, t0, t1, 2        # arr[3] = 40
        """
        assert run(code).exit_code == 40

    def test_indexed_store(self, run):
        code = """
        .data
        arr: .zero 32
        .text
        la t0, arr
        li t1, 2
        li t2, 77
        srw t2, t0, t1, 2        # arr[2] = 77
        lw a0, 8(t0)
        """
        assert run(code).exit_code == 77

    def test_address_zero_extension(self, run):
        # Index register holds a value with garbage in the upper 32 bits;
        # the .u form masks it (paper section VIII.A).
        code = """
        .data
        arr: .word 5, 6, 7, 8
        .text
        la t0, arr
        li t1, 1
        li t2, 0xFF00000000
        or t1, t1, t2            # index = 1 with garbage above bit 32
        lrw.u a0, t0, t1, 2      # arr[1] = 6
        """
        assert run(code).exit_code == 6

    def test_addsl(self, run):
        assert run("li t0, 100\nli t1, 5\naddsl a0, t0, t1, 3\n"
                   ).exit_code == 140

    def test_ext_extu(self, run):
        assert run("li t0, 0xABCD\nextu a0, t0, 15, 8\n").exit_code == 0xAB
        # signed extract of 0xCD (bit 7 set) -> negative
        assert run("li t0, 0xCD\next t1, t0, 7, 0\nneg a0, t1\n"
                   ).exit_code == 0x33

    def test_ff0_ff1(self, run):
        # ff1: count of leading zeros before the first one
        assert run("li t0, 1\nff1 a0, t0\n").exit_code == 63
        assert run("li t0, 0\nff1 a0, t0\n").exit_code == 64
        assert run("li t0, -1\nff0 a0, t0\n").exit_code == 64
        assert run("li t0, 0\nff0 a0, t0\n").exit_code == 0

    def test_rev(self, run):
        code = """
        li t0, 0x0102030405060708
        rev t1, t0
        li t2, 0x0807060504030201
        xor a0, t1, t2
        seqz a0, a0
        """
        assert run(code).exit_code == 1

    def test_srri_rotate(self, run):
        code = """
        li t0, 0x8000000000000001
        srri t1, t0, 1
        li t2, 0xC000000000000000
        xor a0, t1, t2
        seqz a0, a0
        """
        assert run(code).exit_code == 1

    def test_tstnbz(self, run):
        code = """
        li t0, 0x00FF00FF00FF00FF
        tstnbz t1, t0            # 0xFF00FF00FF00FF00
        li t2, 0xFF00FF00FF00FF00
        xor a0, t1, t2
        seqz a0, a0
        """
        assert run(code).exit_code == 1

    def test_mula(self, run):
        assert run("li a0, 10\nli t0, 6\nli t1, 7\nmula a0, t0, t1\n"
                   ).exit_code == 52

    def test_muls(self, run):
        assert run("li a0, 50\nli t0, 6\nli t1, 7\nmuls a0, t0, t1\n"
                   ).exit_code == 8

    def test_mulah_halfword(self, run):
        code = """
        li a0, 100
        li t0, 0xFFFF         # -1 as int16
        li t1, 3
        mulah a0, t0, t1      # 100 + (-1 * 3) = 97
        """
        assert run(code).exit_code == 97


@settings(max_examples=30, deadline=None)
@given(st.integers(-1000, 1000), st.integers(-1000, 1000))
def test_add_matches_python(a, b):
    emu = run_asm(f"li t0, {a}\nli t1, {b}\nadd t2, t0, t1\n"
                  "li a0, 0\nsd t2, -8(sp)\n")
    value = emu.state.memory.load_int(emu.state.regs[2] - 8, 8, signed=True)
    assert value == a + b


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 2**32 - 1), st.integers(1, 2**32 - 1))
def test_divu_matches_python(a, b):
    emu = run_asm(f"li t0, {a}\nli t1, {b}\ndivu t2, t0, t1\n"
                  "li a0, 0\nsd t2, -8(sp)\n")
    value = emu.state.memory.load_int(emu.state.regs[2] - 8, 8)
    assert value == a // b
