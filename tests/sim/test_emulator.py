"""Emulator-level tests: fetch/decode path, traps, traces, limits."""

import pytest

from repro.asm import assemble
from repro.sim import Emulator, EmulatorError, run_program
from repro.sim.trace import DynInst


class TestFetchDecode:
    def test_executes_compressed_and_wide_mix(self):
        program = assemble("""
        _start:
            li t0, 5          # compressible
            lui t1, 0x12345   # not compressible
            add a0, t0, x0
            li a7, 93
            ecall
        """, compress=True)
        emulator = Emulator(program)
        assert emulator.run() == 5

    def test_decode_cache_reused(self):
        program = assemble("""
        _start:
            li t0, 100
        loop:
            addi t0, t0, -1
            bnez t0, loop
            li a0, 0
            li a7, 93
            ecall
        """)
        emulator = Emulator(program)
        emulator.run()
        # loop body decoded once, executed 100 times
        assert len(emulator._decode_cache) < 10

    def test_bad_instruction_raises(self):
        program = assemble("_start:\nnop\n")
        emulator = Emulator(program)
        # Jump into unmapped memory: zeros decode as illegal.
        emulator.state.pc = 0x9000_0000
        with pytest.raises(EmulatorError, match="cannot decode"):
            emulator.step()


class TestTraps:
    def test_ebreak_without_handler_raises(self):
        program = assemble("_start:\nebreak\n")
        with pytest.raises(EmulatorError, match="no mtvec handler"):
            Emulator(program).run(10)

    def test_ebreak_vectors_to_mtvec(self):
        program = assemble("""
        _start:
            la t0, handler
            csrw mtvec, t0
            ebreak
            li a0, 1          # skipped
            li a7, 93
            ecall
        handler:
            csrr t1, mcause
            mv a0, t1         # BREAKPOINT = 3
            li a7, 93
            ecall
        """)
        assert Emulator(program).run() == 3

    def test_mepc_records_faulting_pc(self):
        program = assemble("""
        _start:
            la t0, handler
            csrw mtvec, t0
        spot:
            ebreak
        handler:
            csrr t1, mepc
            la t2, spot
            sub a0, t1, t2    # 0 if mepc == &ebreak
            li a7, 93
            ecall
        """)
        assert Emulator(program).run() == 0

    def test_misaligned_amo_traps(self):
        program = assemble("""
        _start:
            la t0, handler
            csrw mtvec, t0
            li t1, 0x100001   # odd address
            amoadd.w t2, t3, (t1)
            li a0, 99
            li a7, 93
            ecall
        handler:
            csrr a0, mcause   # STORE_MISALIGNED = 6
            li a7, 93
            ecall
        """)
        assert Emulator(program).run() == 6


class TestTrace:
    def test_trace_records_everything(self):
        program = assemble("""
        .data
        x: .dword 7
        .text
        _start:
            la t0, x
            ld t1, 0(t0)
            beqz t1, never
            sd t1, 0(t0)
        never:
            li a0, 0
            li a7, 93
            ecall
        """)
        records = list(Emulator(program).trace())
        assert all(isinstance(r, DynInst) for r in records)
        loads = [r for r in records if r.inst.mnemonic == "ld"]
        assert loads and loads[0].mem_size == 8
        branches = [r for r in records if r.inst.mnemonic == "beq"]
        assert branches and branches[0].taken is False
        stores = [r for r in records if r.inst.mnemonic == "sd"]
        assert stores[0].mem_addr == loads[0].mem_addr

    def test_div_bits_recorded(self):
        program = assemble("""
        _start:
            li t0, 255
            li t1, 3
            div t2, t0, t1
            li a0, 0
            li a7, 93
            ecall
        """)
        records = list(Emulator(program).trace())
        divs = [r for r in records if r.inst.mnemonic == "div"]
        assert divs[0].div_bits == 8  # |255| needs 8 bits

    def test_seq_monotonic(self):
        program = assemble("_start:\nnop\nnop\nli a0, 0\nli a7, 93\necall\n")
        seqs = [r.seq for r in Emulator(program).trace()]
        assert seqs == sorted(seqs)


class TestLimits:
    def test_infinite_loop_hits_limit(self):
        program = assemble("_start:\nj _start\n")
        with pytest.raises(EmulatorError, match="instruction limit"):
            Emulator(program).run(max_steps=1000)

    def test_run_program_helper(self):
        program = assemble("_start:\nli a0, 0\nli a7, 93\necall\n")
        emulator = run_program(program)
        assert emulator.halted
