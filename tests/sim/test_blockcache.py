"""Fast (block-translated) execution must be bit-identical to step().

The equivalence gate for the translation cache: every bundled workload
retires the same DynInst stream, register file, memory image and exit
code through ``fast_trace`` as through the precise interpreter, and the
invalidation rules (fence.i, bounded caches, ineligible configurations)
behave exactly like the per-step path.
"""

import hashlib

import pytest

from repro.asm import assemble
from repro.sim import Emulator, WatchdogExpired
from repro.sim import blockcache
from repro.workloads import coremark_suite, eembc_suite, nbench_suite

ALL_WORKLOADS = (list(coremark_suite()) + list(eembc_suite())
                 + list(nbench_suite()))

_FIELDS = ("seq", "pc", "next_pc", "taken", "target", "mem_addr",
           "mem_size", "vl", "sew", "div_bits")


def _snap(dyn):
    return (dyn.inst.spec.mnemonic,) + tuple(
        getattr(dyn, f) for f in _FIELDS)


def _memory_digest(emulator):
    mem = emulator.state.memory
    digest = hashlib.sha256()
    for base in sorted(mem._pages):
        digest.update(base.to_bytes(8, "little"))
        digest.update(bytes(mem._pages[base]))
    return digest.hexdigest()


def _run_both(program_factory, max_steps=None):
    precise = Emulator(program_factory())
    fast = Emulator(program_factory())
    precise_stream = [_snap(d) for d in precise.trace(max_steps)]
    fast_stream = []
    for batch in fast.fast_trace(max_steps):
        fast_stream.extend(_snap(d) for d in batch)
    return precise, fast, precise_stream, fast_stream


def _assert_equivalent(precise, fast, precise_stream, fast_stream):
    assert precise_stream == fast_stream
    assert list(precise.state.regs) == list(fast.state.regs)
    assert list(precise.state.fregs) == list(fast.state.fregs)
    assert precise.state.pc == fast.state.pc
    assert precise.state.instret == fast.state.instret
    assert precise.exit_code == fast.exit_code
    assert _memory_digest(precise) == _memory_digest(fast)


@pytest.mark.parametrize("workload", ALL_WORKLOADS,
                         ids=[w.name for w in ALL_WORKLOADS])
def test_equivalence_on_bundled_workloads(workload):
    _assert_equivalent(*_run_both(workload.program))


# -- invalidation rules ----------------------------------------------------

_PATCH_WORD = 0x00200513       # "addi a0, x0, 2"


def _smc_source(barrier: str) -> str:
    return f"""
    _start:
        li s0, 2
        la t0, patchme
        li t1, {_PATCH_WORD:#x}
    again:
    patchme:
        addi a0, x0, 1
        sw t1, 0(t0)
        {barrier}
        addi s0, s0, -1
        bnez s0, again
        li a7, 93
        ecall
    """


class TestInvalidation:
    def test_fence_i_invalidates_blocks(self):
        emulator = Emulator(assemble(_smc_source("fence.i"),
                                     compress=False))
        assert emulator.run(fast=True) == 2
        assert emulator._blocks.flushes >= 1

    def test_without_fence_matches_precise_staleness(self):
        # The precise interpreter keeps the stale decode without a
        # fence (exit 1); fast mode must reproduce that, not fix it.
        source = _smc_source("nop")
        precise = Emulator(assemble(source, compress=False))
        fast = Emulator(assemble(source, compress=False))
        assert precise.run() == fast.run(fast=True) == 1

    def test_smc_stream_equivalence(self):
        for barrier in ("fence.i", "nop", "icache.iall"):
            _assert_equivalent(*_run_both(
                lambda: assemble(_smc_source(barrier), compress=False)))


# -- fallback and bounds ---------------------------------------------------

_TINY = """
_start:
    li t0, 50
loop:
    addi t0, t0, -1
    bnez t0, loop
    li a0, 7
    li a7, 93
    ecall
"""


class TestFastMode:
    def test_ineligible_config_falls_back_to_precise(self):
        emulator = Emulator(assemble(_TINY), interrupt_fn=lambda: 0)
        assert not emulator._fast_eligible()
        batches = list(emulator.fast_trace())
        assert all(len(batch) == 1 for batch in batches)
        assert emulator._blocks is None          # engine never built
        assert emulator.exit_code == 7

    def test_run_fast_exit_code(self):
        emulator = Emulator(assemble(_TINY))
        assert emulator.run(fast=True) == 7

    def test_run_fast_watchdog(self):
        emulator = Emulator(assemble(_TINY))
        with pytest.raises(WatchdogExpired):
            emulator.run(max_steps=10, fast=True)

    def test_fast_trace_watchdog(self):
        emulator = Emulator(assemble(_TINY))
        with pytest.raises(WatchdogExpired):
            for _ in emulator.fast_trace(10):
                pass

    def test_fast_trace_respects_budget_mid_block(self):
        precise = Emulator(assemble(_TINY))
        fast = Emulator(assemble(_TINY))
        precise_stream = []
        try:
            for dyn in precise.trace(7):
                precise_stream.append(_snap(dyn))
        except WatchdogExpired:
            pass
        fast_stream = []
        try:
            for batch in fast.fast_trace(7):
                fast_stream.extend(_snap(d) for d in batch)
        except WatchdogExpired:
            pass
        assert precise_stream == fast_stream
        assert fast.state.instret == precise.state.instret == 7

    def test_block_cache_bounded(self, monkeypatch):
        monkeypatch.setattr(blockcache, "BLOCK_CACHE_LIMIT", 2)
        emulator = Emulator(assemble(_TINY))
        emulator.run(fast=True)
        engine = emulator._blocks
        assert len(engine.blocks) <= 2
        assert engine.flushes >= 1

    def test_counters_exposed(self):
        emulator = Emulator(assemble(_TINY))
        emulator.run(fast=True)
        counters = emulator._blocks.counters()
        assert counters["translated_blocks"] >= 2
        assert counters["block_executions"] >= 50


class TestDecodeCache:
    def test_hit_miss_counters(self):
        emulator = Emulator(assemble(_TINY))
        emulator.run()
        assert emulator.decode_cache_misses > 0
        assert emulator.decode_cache_hits > emulator.decode_cache_misses

    def test_bounded(self):
        emulator = Emulator(assemble(_TINY))
        emulator.DECODE_CACHE_LIMIT = 2
        emulator.run()
        assert len(emulator._decode_cache) <= 2
        assert emulator.decode_cache_flushes >= 1

    def test_surfaced_in_core_stats(self):
        from repro.harness.runner import run_on_core

        result = run_on_core(
            assemble(_TINY.replace("li a0, 7", "li a0, 0")), "xt910")
        stats = result.stats
        assert stats.decode_cache_hits > 0
        assert stats.decode_cache_misses > 0
        assert "decode cache" in stats.summary()
        assert stats.extra["translated_blocks"] >= 1
