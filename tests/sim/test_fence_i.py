"""fence.i must flush the decode cache so self-modifying code is seen.

Regression test: fence.i used to be a no-op, so a store over an
already-executed instruction kept hitting the stale cached decode.
"""

from repro.asm import assemble
from repro.sim import Emulator

# 0x00200513 encodes "addi a0, x0, 2".
_PATCH_WORD = 0x00200513


def _program(barrier: str) -> str:
    return f"""
    _start:
        li s0, 2
        la t0, patchme
        li t1, {_PATCH_WORD:#x}
    again:
    patchme:
        addi a0, x0, 1
        sw t1, 0(t0)
        {barrier}
        addi s0, s0, -1
        bnez s0, again
        li a7, 93
        ecall
    """


class TestFenceI:
    def test_fence_i_exposes_patched_instruction(self):
        # Pass 1 executes (and caches) "addi a0, x0, 1", then stores
        # "addi a0, x0, 2" over it and fences.  Pass 2 must see the
        # patched instruction, so the program exits 2.
        emulator = Emulator(assemble(_program("fence.i"), compress=False))
        assert emulator.run() == 2

    def test_without_fence_stale_decode_survives(self):
        # Same program with the fence dropped: the decode cache keeps
        # the pre-patch instruction and the program exits 1.  This
        # pins down WHY the fence is required — if decode caching were
        # removed entirely, both variants would exit 2.
        emulator = Emulator(assemble(_program("nop"), compress=False))
        assert emulator.run() == 1

    def test_icache_iall_also_flushes(self):
        # The Xuantie cache-management extension's full-flush op must
        # behave like fence.i for the decode cache.
        emulator = Emulator(
            assemble(_program("icache.iall"), compress=False))
        assert emulator.run() == 2
