"""Functional tests for the 0.7.1-flavoured vector extension."""

import struct

def dump_dwords(emu, symbol, count):
    base = emu.program.symbol(symbol)
    return [emu.state.memory.load_int(base + 8 * i, 8, signed=True)
            for i in range(count)]


def dump_words(emu, symbol, count):
    base = emu.program.symbol(symbol)
    return [emu.state.memory.load_int(base + 4 * i, 4, signed=True)
            for i in range(count)]


class TestVsetvl:
    def test_grants_vlmax(self, run):
        # VLEN=128, SEW=32, LMUL=1 -> VLMAX=4
        emu = run("li t0, 100\nvsetvli a0, t0, e32, m1\n")
        assert emu.exit_code == 4

    def test_grants_avl_when_small(self, run):
        emu = run("li t0, 3\nvsetvli a0, t0, e32, m1\n")
        assert emu.exit_code == 3

    def test_lmul_scales_vlmax(self, run):
        emu = run("li t0, 100\nvsetvli a0, t0, e16, m4\n")
        assert emu.exit_code == 32  # 128*4/16

    def test_sew64(self, run):
        emu = run("li t0, 100\nvsetvli a0, t0, e64, m1\n")
        assert emu.exit_code == 2

    def test_vsetvl_register_form(self, run):
        code = """
        li t0, 100
        li t1, 8              # vtype bits: sew=32 (code 2<<2), lmul=1
        vsetvl a0, t0, t1
        """
        assert run(code).exit_code == 4


class TestIntVectorOps:
    def test_vadd_vv(self, run):
        code = """
        .data
        a: .word 1, 2, 3, 4
        b: .word 10, 20, 30, 40
        out: .zero 16
        .text
        li t0, 4
        vsetvli t0, t0, e32, m1
        la t1, a
        la t2, b
        vle32.v v1, (t1)
        vle32.v v2, (t2)
        vadd.vv v3, v1, v2
        la t3, out
        vse32.v v3, (t3)
        li a0, 0
        """
        emu = run(code)
        assert dump_words(emu, "out", 4) == [11, 22, 33, 44]

    def test_vadd_vx_and_vi(self, run):
        code = """
        .data
        a: .word 1, 2, 3, 4
        out: .zero 16
        .text
        li t0, 4
        vsetvli t0, t0, e32, m1
        la t1, a
        vle32.v v1, (t1)
        li t2, 100
        vadd.vx v2, v1, t2
        vadd.vi v2, v2, 5
        la t3, out
        vse32.v v2, (t3)
        li a0, 0
        """
        emu = run(code)
        assert dump_words(emu, "out", 4) == [106, 107, 108, 109]

    def test_vmul_and_vmacc(self, run):
        code = """
        .data
        a: .word 1, 2, 3, 4
        b: .word 5, 6, 7, 8
        out: .zero 16
        .text
        li t0, 4
        vsetvli t0, t0, e32, m1
        la t1, a
        la t2, b
        vle32.v v1, (t1)
        vle32.v v2, (t2)
        vmv.v.i v3, 1
        vmacc.vv v3, v1, v2    # v3 = 1 + a*b
        la t3, out
        vse32.v v3, (t3)
        li a0, 0
        """
        emu = run(code)
        assert dump_words(emu, "out", 4) == [6, 13, 22, 33]

    def test_masked_add(self, run):
        code = """
        .data
        a: .word 1, 1, 1, 1
        out: .word 0, 0, 0, 0
        .text
        li t0, 4
        vsetvli t0, t0, e32, m1
        la t1, a
        vle32.v v1, (t1)
        li t2, 0b0101              # mask elements 0 and 2
        vmv.s.x v0, t2
        la t3, out
        vle32.v v3, (t3)
        vadd.vi v3, v1, 9, v0.t    # only elements 0,2 updated
        vse32.v v3, (t3)
        li a0, 0
        """
        emu = run(code)
        assert dump_words(emu, "out", 4) == [10, 0, 10, 0]

    def test_vredsum(self, run):
        code = """
        .data
        a: .word 10, 20, 30, 40
        .text
        li t0, 4
        vsetvli t0, t0, e32, m1
        la t1, a
        vle32.v v1, (t1)
        vmv.v.i v2, 0
        vredsum.vs v3, v1, v2
        vmv.x.s a0, v3
        """
        assert run(code).exit_code == 100

    def test_vredmax(self, run):
        code = """
        .data
        a: .word 3, 17, 5, 11
        .text
        li t0, 4
        vsetvli t0, t0, e32, m1
        la t1, a
        vle32.v v1, (t1)
        vmv.v.i v2, 0
        vredmax.vs v3, v1, v2
        vmv.x.s a0, v3
        """
        assert run(code).exit_code == 17

    def test_widening_mac_16to32(self, run):
        # The AI/ML use case from section VII: 16-bit MACs accumulating
        # into 32 bits.
        code = """
        .data
        a: .half 100, 200, 300, 400, 500, 600, 700, 800
        b: .half 2, 2, 2, 2, 2, 2, 2, 2
        out: .zero 32
        .text
        li t0, 8
        vsetvli t0, t0, e16, m1
        la t1, a
        la t2, b
        vle16.v v1, (t1)
        vle16.v v2, (t2)
        vwmul.vv v4, v1, v2     # 32-bit results in v4..v5
        li t0, 8
        vsetvli t0, t0, e32, m2
        la t3, out
        vse32.v v4, (t3)
        li a0, 0
        """
        emu = run(code)
        assert dump_words(emu, "out", 8) == [200, 400, 600, 800, 1000,
                                             1200, 1400, 1600]

    def test_compare_writes_mask(self, run):
        code = """
        .data
        a: .word 5, -1, 7, -3
        .text
        li t0, 4
        vsetvli t0, t0, e32, m1
        la t1, a
        vle32.v v1, (t1)
        vmv.v.i v2, 0
        vmslt.vv v0, v1, v2     # mask = elements < 0 => 0b1010
        vmv.x.s t2, v0
        andi a0, t2, 0xF
        """
        assert run(code).exit_code == 0b1010


class TestVectorMemory:
    def test_strided_load(self, run):
        code = """
        .data
        mat: .word 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12
        out: .zero 16
        .text
        li t0, 3
        vsetvli t0, t0, e32, m1
        la t1, mat
        li t2, 16                # stride: 4 words = one row
        vlse32.v v1, (t1), t2    # column 0: 1, 5, 9
        la t3, out
        vse32.v v1, (t3)
        li a0, 0
        """
        emu = run(code)
        assert dump_words(emu, "out", 3) == [1, 5, 9]

    def test_strided_store(self, run):
        code = """
        .data
        out: .zero 48
        .text
        li t0, 3
        vsetvli t0, t0, e32, m1
        vmv.v.i v1, 7
        la t1, out
        li t2, 16
        vsse32.v v1, (t1), t2
        li a0, 0
        """
        emu = run(code)
        words = dump_words(emu, "out", 12)
        assert words[0] == 7 and words[4] == 7 and words[8] == 7
        assert words[1] == 0

    def test_load_store_64(self, run):
        code = """
        .data
        a: .dword 111, 222
        out: .zero 16
        .text
        li t0, 2
        vsetvli t0, t0, e64, m1
        la t1, a
        vle64.v v1, (t1)
        vadd.vi v1, v1, 1
        la t2, out
        vse64.v v1, (t2)
        li a0, 0
        """
        emu = run(code)
        assert dump_dwords(emu, "out", 2) == [112, 223]


class TestVectorFloat:
    def test_vfadd(self, run):
        code = """
        .data
        a: .float 1.5, 2.5, 3.5, 4.5
        b: .float 0.5, 0.5, 0.5, 0.5
        out: .zero 16
        .text
        li t0, 4
        vsetvli t0, t0, e32, m1
        la t1, a
        la t2, b
        vle32.v v1, (t1)
        vle32.v v2, (t2)
        vfadd.vv v3, v1, v2
        la t3, out
        vse32.v v3, (t3)
        li a0, 0
        """
        emu = run(code)
        base = emu.program.symbol("out")
        raw = emu.state.memory.load_bytes(base, 16)
        assert struct.unpack("<4f", raw) == (2.0, 3.0, 4.0, 5.0)

    def test_vfmacc_double(self, run):
        code = """
        .data
        a: .double 2.0, 3.0
        b: .double 10.0, 10.0
        acc: .double 1.0, 1.0
        out: .zero 16
        .text
        li t0, 2
        vsetvli t0, t0, e64, m1
        la t1, a
        la t2, b
        la t3, acc
        vle64.v v1, (t1)
        vle64.v v2, (t2)
        vle64.v v3, (t3)
        vfmacc.vv v3, v1, v2
        la t4, out
        vse64.v v3, (t4)
        li a0, 0
        """
        emu = run(code)
        base = emu.program.symbol("out")
        raw = emu.state.memory.load_bytes(base, 16)
        assert struct.unpack("<2d", raw) == (21.0, 31.0)

    def test_vfredsum(self, run):
        code = """
        .data
        a: .float 1.0, 2.0, 3.0, 4.0
        .text
        li t0, 4
        vsetvli t0, t0, e32, m1
        la t1, a
        vle32.v v1, (t1)
        vmv.v.i v2, 0
        vfredsum.vs v3, v1, v2
        vmv.x.s t2, v3
        fmv.w.x fa0, t2
        fcvt.w.s a0, fa0
        """
        assert run(code).exit_code == 10

    def test_half_precision(self, run):
        # FP16 vectors: not supported by Cortex-A73 NEON, a differentiator
        # the paper calls out for AI workloads.
        code = """
        .data
        a: .half 0x3C00, 0x4000, 0x4200, 0x4400   # 1.0, 2.0, 3.0, 4.0 fp16
        .text
        li t0, 4
        vsetvli t0, t0, e16, m1
        la t1, a
        vle16.v v1, (t1)
        vfadd.vv v2, v1, v1
        vmv.x.s a0, v2       # 2.0 in fp16 = 0x4000
        """
        assert run(code).exit_code == 0x4000


class TestVectorPermutation:
    def test_vslidedown(self, run):
        code = """
        .data
        a: .word 10, 20, 30, 40
        out: .zero 16
        .text
        li t0, 4
        vsetvli t0, t0, e32, m1
        la t1, a
        vle32.v v1, (t1)
        vslidedown.vi v2, v1, 1
        la t2, out
        vse32.v v2, (t2)
        li a0, 0
        """
        emu = run(code)
        assert dump_words(emu, "out", 4) == [20, 30, 40, 0]

    def test_vslideup(self, run):
        code = """
        .data
        a: .word 10, 20, 30, 40
        out: .word 9, 9, 9, 9
        .text
        li t0, 4
        vsetvli t0, t0, e32, m1
        la t1, a
        vle32.v v1, (t1)
        la t2, out
        vle32.v v2, (t2)
        vslideup.vi v2, v1, 2    # elements 0,1 untouched
        vse32.v v2, (t2)
        li a0, 0
        """
        emu = run(code)
        assert dump_words(emu, "out", 4) == [9, 9, 10, 20]

    def test_vrgather(self, run):
        code = """
        .data
        a: .word 10, 20, 30, 40
        idx: .word 3, 2, 1, 0
        out: .zero 16
        .text
        li t0, 4
        vsetvli t0, t0, e32, m1
        la t1, a
        la t2, idx
        vle32.v v1, (t1)
        vle32.v v2, (t2)
        vrgather.vv v3, v1, v2
        la t3, out
        vse32.v v3, (t3)
        li a0, 0
        """
        emu = run(code)
        assert dump_words(emu, "out", 4) == [40, 30, 20, 10]


class TestMaskOps:
    def test_mask_logical_family(self, run):
        code = """
        .data
        a: .word 5, -1, 7, -3
        .text
        li t0, 4
        vsetvli t0, t0, e32, m1
        la t1, a
        vle32.v v1, (t1)
        vmv.v.i v2, 0
        vmslt.vv v3, v1, v2     # negatives: 0b1010
        vmsle.vv v4, v2, v1     # non-negatives: 0b0101
        vmor.mm v5, v3, v4
        vcpop.m t2, v5          # 4
        vmand.mm v6, v3, v4
        vcpop.m t3, v6          # 0
        vmxor.mm v7, v3, v4
        vcpop.m t4, v7          # 4
        vmnand.mm v8, v3, v3    # complement of v3 over vl: 0b0101
        vcpop.m t5, v8          # 2
        slli a0, t2, 12
        slli t3, t3, 8
        or a0, a0, t3
        slli t4, t4, 4
        or a0, a0, t4
        or a0, a0, t5
        """
        assert run(code).exit_code == 0x4042

    def test_vid(self, run):
        code = """
        .data
        out: .zero 16
        .text
        li t0, 4
        vsetvli t0, t0, e32, m1
        vid.v v1
        la t1, out
        vse32.v v1, (t1)
        li a0, 0
        """
        emu = run(code)
        assert dump_words(emu, "out", 4) == [0, 1, 2, 3]

    def test_vid_masked(self, run):
        code = """
        .data
        out: .word 9, 9, 9, 9
        .text
        li t0, 4
        vsetvli t0, t0, e32, m1
        li t2, 0b0110
        vmv.s.x v0, t2
        la t1, out
        vle32.v v1, (t1)
        vid.v v1, v0.t
        vse32.v v1, (t1)
        li a0, 0
        """
        emu = run(code)
        assert dump_words(emu, "out", 4) == [9, 1, 2, 9]

    def test_vcpop_respects_vl(self, run):
        code = """
        li t0, 3
        vsetvli t0, t0, e32, m1
        li t1, -1
        vmv.s.x v1, t1          # element 0 = all ones
        vcpop.m a0, v1          # only the first 3 bits counted
        """
        assert run(code).exit_code == 3


class TestVectorEdgeCases:
    def test_vl_zero_is_noop(self, run):
        code = """
        .data
        out: .word 7, 7, 7, 7
        .text
        li t0, 4
        vsetvli t0, t0, e32, m1
        la t1, out
        vle32.v v1, (t1)
        li t0, 0
        vsetvli t0, t0, e32, m1  # vl = 0
        vadd.vi v1, v1, 9        # touches nothing
        li t0, 4
        vsetvli t0, t0, e32, m1
        vse32.v v1, (t1)
        li a0, 0
        """
        emu = run(code)
        assert dump_words(emu, "out", 4) == [7, 7, 7, 7]

    def test_lmul2_group_arithmetic(self, run):
        code = """
        .data
        a: .word 1, 2, 3, 4, 5, 6, 7, 8
        out: .zero 32
        .text
        li t0, 8
        vsetvli t0, t0, e32, m2  # one op covers v2-v3
        la t1, a
        vle32.v v2, (t1)
        vadd.vx v4, v2, t0       # +8 to all 8 elements
        la t2, out
        vse32.v v4, (t2)
        li a0, 0
        """
        emu = run(code)
        assert dump_words(emu, "out", 8) == [9, 10, 11, 12, 13, 14, 15, 16]

    def test_tail_undisturbed(self, run):
        code = """
        .data
        out: .word 5, 5, 5, 5
        .text
        li t0, 4
        vsetvli t0, t0, e32, m1
        la t1, out
        vle32.v v1, (t1)
        li t0, 2
        vsetvli t0, t0, e32, m1  # vl = 2
        vadd.vi v1, v1, 1
        li t0, 4
        vsetvli t0, t0, e32, m1
        vse32.v v1, (t1)
        li a0, 0
        """
        emu = run(code)
        assert dump_words(emu, "out", 4) == [6, 6, 5, 5]

    def test_sew8_elements(self, run):
        code = """
        .data
        a: .byte 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16
        out: .zero 16
        .text
        li t0, 16
        vsetvli t0, t0, e8, m1   # all 16 lanes of VLEN=128
        la t1, a
        vle8.v v1, (t1)
        vadd.vv v2, v1, v1
        la t2, out
        vse8.v v2, (t2)
        li a0, 0
        """
        emu = run(code)
        base = emu.program.symbol("out")
        data = emu.state.memory.load_bytes(base, 16)
        assert list(data) == [2 * i for i in range(1, 17)]
