"""Shared helpers for emulator tests."""

import pytest

from repro.asm import assemble
from repro.sim import Emulator


EXIT = """
    li a7, 93
    ecall
"""


def run_asm(body: str, compress: bool = False, max_steps: int = 1_000_000):
    """Assemble `body` (which must leave the result in a0), run, return emu."""
    program = assemble(body + EXIT, compress=compress)
    emulator = Emulator(program)
    emulator.run(max_steps)
    return emulator


@pytest.fixture
def run():
    return run_asm
