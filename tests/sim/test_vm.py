"""SV39 virtual memory tests: translation, permissions, page faults,
privilege transitions (section V.E)."""

from repro.asm import assemble
from repro.mem.ptw import PTE_R, PTE_W, PTE_X, PageTableBuilder
from repro.sim import Emulator, Memory


def boot_with_paging(user_body: str, handler_body: str = "",
                     extra_maps=None, user_flags=PTE_R | PTE_W | PTE_X
                     ) -> Emulator:
    """Assemble an M-mode boot stub that builds SV39 tables, drops to
    S-mode at a *virtual* address, and runs *user_body* there."""
    program = assemble(f"""
        .text
_start:
    la t0, mhandler
    csrw mtvec, t0
    # satp: mode=8 (SV39), root ppn set by the test harness below
    li t1, 8
    slli t1, t1, 60
    li t2, 0x80000      # root = 0x80000000 >> 12
    or t1, t1, t2
    csrw satp, t1
    # mstatus.MPP = supervisor (1)
    li t3, 0x800
    csrs mstatus, t3
    la t4, payload      # identity-mapped code
    csrw mepc, t4
    mret                # drop to S-mode with paging on
payload:
{user_body}
    li a0, 0
    li a7, 93
    ecall               # from S-mode: traps to mhandler
mhandler:
{handler_body if handler_body else '''
    csrr a0, mcause
    li a7, 93
    li t0, 9            # ECALL_FROM_S: clean exit
    bne a0, t0, bad
    li a0, 0
bad:
'''}
    # back in M-mode: paging off, the shim works
    li a7, 93
    ecall
    """)
    memory = Memory()
    memory.load_program(program)
    builder = PageTableBuilder(memory, table_base=0x8000_0000)
    # Identity-map text, data and stack as supervisor RWX.
    builder.identity_map(program.text_base, len(program.text) + 0x1000)
    builder.identity_map(program.data_base, 0x4000)
    builder.identity_map(0x0100_0000 - 0x8000, 0x8000)  # stack
    for vaddr, paddr, size, flags in (extra_maps or []):
        builder.map_page(vaddr, paddr, size, flags)
    emulator = Emulator(program, memory=memory, load=False, enable_mmu=True)
    return emulator


class TestTranslation:
    def test_identity_mapped_execution(self):
        emulator = boot_with_paging("""
    li t0, 21
    slli t0, t0, 1
""")
        assert emulator.run(100_000) == 0

    def test_remapped_data_page(self):
        # Map VA 0x40000000 -> PA 0x00900000 and store through it.
        emulator = boot_with_paging("""
    li t0, 0x40000000
    li t1, 777
    sd t1, 0(t0)
""", extra_maps=[(0x4000_0000, 0x0090_0000, 4096,
                  PTE_R | PTE_W)])
        assert emulator.run(100_000) == 0
        # The store landed at the *physical* page.
        physical = emulator.mmu.physical
        assert physical.load_int(0x0090_0000, 8) == 777
        assert physical.load_int(0x4000_0000, 8) == 0

    def test_huge_page_mapping(self):
        emulator = boot_with_paging("""
    li t0, 0x80200000   # inside a 2M page mapped at VA base 0x80200000
    li t1, 42
    sd t1, 0(t0)
    ld t2, 0(t0)
""", extra_maps=[(0x8020_0000, 0x0080_0000, 2 << 20, PTE_R | PTE_W)])
        assert emulator.run(100_000) == 0
        assert emulator.mmu.physical.load_int(0x0080_0000, 8) == 42


class TestPageFaults:
    def test_unmapped_load_faults(self):
        emulator = boot_with_paging("""
    li t0, 0x70000000
    ld t1, 0(t0)         # no mapping: LOAD_PAGE_FAULT (13)
""", handler_body="""
    csrr a0, mcause      # expose the cause as the exit code
""")
        assert emulator.run(100_000) == 13

    def test_write_to_readonly_faults(self):
        emulator = boot_with_paging("""
    li t0, 0x40000000
    sd t0, 0(t0)         # read-only page: STORE_PAGE_FAULT (15)
""", handler_body="""
    csrr a0, mcause
""", extra_maps=[(0x4000_0000, 0x0090_0000, 4096, PTE_R)])
        assert emulator.run(100_000) == 15

    def test_execute_from_nx_page_faults(self):
        emulator = boot_with_paging("""
    li t0, 0x40000000
    jr t0                # data page is not executable: fault (12)
""", handler_body="""
    csrr a0, mcause
""", extra_maps=[(0x4000_0000, 0x0090_0000, 4096, PTE_R | PTE_W)])
        assert emulator.run(100_000) == 12

    def test_mtval_holds_faulting_address(self):
        emulator = boot_with_paging("""
    li t0, 0x70000008
    ld t1, 0(t0)
""", handler_body="""
    csrr t5, mtval
    li t6, 0x70000008
    sub a0, t5, t6       # 0 if mtval == faulting VA
""")
        assert emulator.run(100_000) == 0


class TestPrivilege:
    def test_machine_mode_bypasses_paging(self):
        # M-mode runs with satp set but translation inactive.
        program = assemble("""
        _start:
            li t1, 8
            slli t1, t1, 60
            csrw satp, t1      # SV39 enabled... but we stay in M-mode
            li t0, 0x123456
            li a0, 0
            li a7, 93
            ecall
        """)
        emulator = Emulator(program, enable_mmu=True)
        assert emulator.run(10_000) == 0

    def test_ecall_from_smode_traps_with_cause9(self):
        emulator = boot_with_paging("nop", handler_body="""
    csrr a0, mcause
""")
        assert emulator.run(100_000) == 9

    def test_sfence_flushes_tlb(self):
        emulator = boot_with_paging("""
    li t0, 0x40000000
    ld t1, 0(t0)         # warm the TLB
    sfence.vma
    ld t2, 0(t0)         # re-walks, same mapping
""", extra_maps=[(0x4000_0000, 0x0090_0000, 4096, PTE_R)])
        assert emulator.run(100_000) == 0
