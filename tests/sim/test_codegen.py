"""Tier-3 (specializing translator) must be bit-identical to step().

The equivalence gate for ``repro.sim.codegen``: every bundled workload
retires the same DynInst stream, register file, memory image and exit
code through ``codegen_trace`` as through the precise interpreter —
with the on-disk code cache **cold** (blocks freshly emitted and
compiled) and **warm** (code objects loaded back via ``marshal``).
Plus the cache lifecycle rules: version bumps and text mutations miss,
corrupt cache files are discarded rather than fatal, ``fence.i``
drops compiled blocks, and ineligible configurations fall back.
"""

import hashlib
import os

import pytest

from repro.asm import assemble
from repro.sim import Emulator, WatchdogExpired
from repro.sim import codegen
from repro.workloads import all_workloads

ALL_WORKLOADS = list(all_workloads())

_FIELDS = ("seq", "pc", "next_pc", "taken", "target", "mem_addr",
           "mem_size", "vl", "sew", "div_bits")


def _snap(dyn):
    return (dyn.inst.spec.mnemonic,) + tuple(
        getattr(dyn, f) for f in _FIELDS)


def _memory_digest(emulator):
    mem = emulator.state.memory
    digest = hashlib.sha256()
    for base in sorted(mem._pages):
        digest.update(base.to_bytes(8, "little"))
        digest.update(bytes(mem._pages[base]))
    return digest.hexdigest()


def _tier3_stream(program, max_steps=None):
    emulator = Emulator(program)
    stream = []
    for batch in emulator.codegen_trace(max_steps):
        stream.extend(_snap(d) for d in batch)
    return emulator, stream


def _assert_equivalent(precise, other, precise_stream, other_stream):
    assert precise_stream == other_stream
    assert list(precise.state.regs) == list(other.state.regs)
    assert list(precise.state.fregs) == list(other.state.fregs)
    assert precise.state.pc == other.state.pc
    assert precise.state.instret == other.state.instret
    assert precise.exit_code == other.exit_code
    assert _memory_digest(precise) == _memory_digest(other)


@pytest.mark.parametrize("workload", ALL_WORKLOADS,
                         ids=[w.name for w in ALL_WORKLOADS])
def test_equivalence_cold_and_warm(workload):
    precise = Emulator(workload.program())
    precise_stream = [_snap(d) for d in precise.trace(None)]

    cold, cold_stream = _tier3_stream(workload.program())
    _assert_equivalent(precise, cold, precise_stream, cold_stream)
    cold_counters = cold.counters()
    assert cold_counters["codegen_blocks_compiled"] > 0
    assert cold_counters["codegen_disk_hits"] == 0

    # The autouse cache-dir fixture is per-test, so this second run
    # warms from exactly what the cold run persisted.
    warm, warm_stream = _tier3_stream(workload.program())
    _assert_equivalent(precise, warm, precise_stream, warm_stream)
    warm_counters = warm.counters()
    assert warm_counters["codegen_blocks_compiled"] == 0
    assert (warm_counters["codegen_disk_hits"]
            >= cold_counters["codegen_blocks_compiled"])


# -- the persistent code cache ----------------------------------------------

_TINY = """
_start:
    li t0, 50
loop:
    addi t0, t0, -1
    bnez t0, loop
    li a0, 7
    li a7, 93
    ecall
"""


def _cache_dir():
    return os.environ["REPRO_CODE_CACHE_DIR"]


def _cache_files():
    directory = _cache_dir()
    if not os.path.isdir(directory):
        return []
    return sorted(name for name in os.listdir(directory)
                  if name.endswith(".cgc"))


class TestDiskCache:
    def test_warm_start_skips_translation(self):
        first = Emulator(assemble(_TINY))
        assert first.run(tier=3) == 7
        assert first.counters()["codegen_blocks_compiled"] > 0
        assert len(_cache_files()) == 1

        second = Emulator(assemble(_TINY))
        assert second.run(tier=3) == 7
        counters = second.counters()
        assert counters["codegen_blocks_compiled"] == 0
        assert counters["codegen_compile_s"] == 0.0
        assert counters["codegen_disk_hits"] > 0

    def test_version_bump_retranslates(self, monkeypatch):
        Emulator(assemble(_TINY)).run(tier=3)
        monkeypatch.setattr(codegen, "CODEGEN_VERSION",
                            codegen.CODEGEN_VERSION + 1)
        emulator = Emulator(assemble(_TINY))
        assert emulator.run(tier=3) == 7
        counters = emulator.counters()
        assert counters["codegen_disk_hits"] == 0
        assert counters["codegen_blocks_compiled"] > 0

    def test_text_mutation_retranslates(self):
        Emulator(assemble(_TINY)).run(tier=3)
        mutated = _TINY.replace("li a0, 7", "li a0, 9")
        emulator = Emulator(assemble(mutated))
        assert emulator.run(tier=3) == 9
        counters = emulator.counters()
        assert counters["codegen_disk_hits"] == 0
        assert counters["codegen_blocks_compiled"] > 0

    def test_corrupt_cache_file_discarded_not_fatal(self):
        Emulator(assemble(_TINY)).run(tier=3)
        (name,) = _cache_files()
        path = os.path.join(_cache_dir(), name)
        with open(path, "wb") as handle:
            handle.write(b"\x00garbage, not a marshal payload")

        emulator = Emulator(assemble(_TINY))
        assert emulator.run(tier=3) == 7
        counters = emulator.counters()
        assert counters["codegen_disk_corrupt"] == 1
        assert counters["codegen_blocks_compiled"] > 0
        # The poisoned file was unlinked and replaced by a fresh one.
        assert _cache_files() == [name]
        second = Emulator(assemble(_TINY))
        assert second.run(tier=3) == 7
        assert second.counters()["codegen_disk_hits"] > 0

    def test_cache_disabled_by_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CODE_CACHE", "0")
        emulator = Emulator(assemble(_TINY))
        assert emulator.run(tier=3) == 7
        assert emulator.counters()["codegen_blocks_compiled"] > 0
        assert _cache_files() == []

    def test_prune_bounds_cache_files(self, monkeypatch):
        monkeypatch.setattr(codegen, "DISK_CACHE_FILES", 2)
        for value in range(4):
            source = _TINY.replace("li a0, 7", f"li a0, {value}")
            Emulator(assemble(source)).run(tier=3)
        assert len(_cache_files()) <= 2


# -- invalidation ------------------------------------------------------------

_PATCH_WORD = 0x00200513       # "addi a0, x0, 2"


def _smc_source(barrier: str) -> str:
    return f"""
    _start:
        li s0, 2
        la t0, patchme
        li t1, {_PATCH_WORD:#x}
    again:
    patchme:
        addi a0, x0, 1
        sw t1, 0(t0)
        {barrier}
        addi s0, s0, -1
        bnez s0, again
        li a7, 93
        ecall
    """


class TestInvalidation:
    def test_fence_i_invalidates_compiled_blocks(self):
        emulator = Emulator(assemble(_smc_source("fence.i"),
                                     compress=False))
        assert emulator.run(tier=3) == 2

    def test_without_fence_matches_precise_staleness(self):
        # The precise interpreter keeps the stale decode without a
        # fence (exit 1); tier-3 must reproduce that, not fix it.
        source = _smc_source("nop")
        precise = Emulator(assemble(source, compress=False))
        tier3 = Emulator(assemble(source, compress=False))
        assert precise.run() == tier3.run(tier=3) == 1

    def test_smc_stream_equivalence(self):
        for barrier in ("fence.i", "nop", "icache.iall"):
            program = assemble(_smc_source(barrier), compress=False)
            precise = Emulator(assemble(_smc_source(barrier),
                                        compress=False))
            precise_stream = [_snap(d) for d in precise.trace(None)]
            tier3, tier3_stream = _tier3_stream(program)
            _assert_equivalent(precise, tier3, precise_stream,
                               tier3_stream)

    def test_mutated_run_not_persisted(self):
        # A run that observed code mutation must not seed the disk
        # cache: the entries describe text that no longer holds.
        emulator = Emulator(assemble(_smc_source("fence.i"),
                                     compress=False))
        assert emulator.run(tier=3) == 2
        assert _cache_files() == []


# -- dispatch, fallback and bounds -------------------------------------------

class TestTier3Mode:
    def test_run_rejects_unknown_tier(self):
        with pytest.raises(ValueError):
            Emulator(assemble(_TINY)).run(tier=4)

    def test_run_tier_selects_engines(self):
        tier1 = Emulator(assemble(_TINY))
        assert tier1.run(tier=1) == 7
        assert tier1._blocks is None and tier1._codegen is None
        tier2 = Emulator(assemble(_TINY))
        assert tier2.run(tier=2) == 7
        assert tier2._blocks is not None and tier2._codegen is None
        tier3 = Emulator(assemble(_TINY))
        assert tier3.run(tier=3) == 7
        assert tier3._codegen is not None

    def test_sanitizer_falls_back_to_fast(self):
        from repro.analysis import Sanitizer

        program = assemble(_TINY)
        emulator = Emulator(program)
        emulator.sanitizer = Sanitizer(program)
        assert not emulator._tier3_eligible()
        assert emulator._fast_eligible()
        assert emulator.run(tier=3) == 7
        assert emulator._codegen is None         # engine never built
        assert emulator._blocks is not None      # tier-2 ran instead

    def test_interrupt_fn_falls_back_to_precise(self):
        emulator = Emulator(assemble(_TINY), interrupt_fn=lambda: 0)
        assert not emulator._tier3_eligible()
        batches = list(emulator.codegen_trace())
        assert all(len(batch) == 1 for batch in batches)
        assert emulator._codegen is None
        assert emulator._blocks is None
        assert emulator.exit_code == 7

    def test_run_tier3_watchdog(self):
        emulator = Emulator(assemble(_TINY))
        with pytest.raises(WatchdogExpired):
            emulator.run(max_steps=10, tier=3)

    def test_trace_respects_budget_mid_block(self):
        precise = Emulator(assemble(_TINY))
        precise_stream = []
        try:
            for dyn in precise.trace(7):
                precise_stream.append(_snap(dyn))
        except WatchdogExpired:
            pass
        tier3 = Emulator(assemble(_TINY))
        tier3_stream = []
        try:
            for batch in tier3.codegen_trace(7):
                tier3_stream.extend(_snap(d) for d in batch)
        except WatchdogExpired:
            pass
        assert precise_stream == tier3_stream
        assert tier3.state.instret == precise.state.instret == 7

    def test_code_cache_bounded(self, monkeypatch):
        monkeypatch.setattr(codegen, "CODE_CACHE_LIMIT", 2)
        emulator = Emulator(assemble(_TINY))
        assert emulator.run(tier=3) == 7
        engine = emulator._codegen
        assert len(engine.compiled) <= 2

    def test_counters_exposed(self):
        emulator = Emulator(assemble(_TINY))
        emulator.run(tier=3)
        counters = emulator.counters()
        for key in ("codegen_blocks_compiled", "codegen_compile_s",
                    "codegen_executions", "codegen_disk_hits",
                    "codegen_disk_misses", "codegen_persisted"):
            assert key in counters
        # The loop block's first iterations run on tier-2 (compile is
        # deferred until a block has proven itself once), so the
        # compiled execution count is a little under the trip count.
        assert counters["codegen_executions"] >= 40
        assert counters["codegen_persisted"] == 1

    def test_surfaced_in_core_stats(self):
        from repro.harness.runner import run_on_core

        result = run_on_core(
            assemble(_TINY.replace("li a0, 7", "li a0, 0")), "xt910",
            tier=3)
        assert result.stats.extra["codegen_blocks_compiled"] >= 1
        assert "codegen_disk_hits" in result.stats.extra
