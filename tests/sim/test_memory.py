"""Memory model tests: sparse pages, cross-page access, MMIO windows."""

from hypothesis import given, settings, strategies as st

from repro.sim import Memory


class TestSparseMemory:
    def test_uninitialized_reads_zero(self):
        m = Memory()
        assert m.load_int(0x12345, 8) == 0

    def test_roundtrip_all_widths(self):
        m = Memory()
        for size in (1, 2, 4, 8):
            m.store_int(0x1000, 0xA5A5A5A5A5A5A5A5, size)
            assert m.load_int(0x1000, size) == \
                0xA5A5A5A5A5A5A5A5 & ((1 << (size * 8)) - 1)

    def test_signed_load(self):
        m = Memory()
        m.store_int(0x1000, 0xFF, 1)
        assert m.load_int(0x1000, 1, signed=True) == -1
        assert m.load_int(0x1000, 1) == 255

    def test_cross_page_store_load(self):
        m = Memory()
        addr = 0x1FFC  # straddles the 4K page boundary
        m.store_int(addr, 0x1122334455667788, 8)
        assert m.load_int(addr, 8) == 0x1122334455667788
        assert m.load_int(0x2000, 4) == 0x11223344

    def test_allocated_pages_tracked(self):
        m = Memory()
        m.store_int(0x0, 1, 1)
        m.store_int(0x100000, 1, 1)
        assert m.allocated_bytes == 2 * 4096

    def test_sparse_far_addresses(self):
        m = Memory()
        m.store_int(1 << 40, 42, 8)
        assert m.load_int(1 << 40, 8) == 42


class _ScratchDevice:
    def __init__(self):
        self.regs = {}
        self.loads = 0

    def load(self, offset, size):
        self.loads += 1
        return self.regs.get(offset, 0)

    def store(self, offset, value, size):
        self.regs[offset] = value


class TestMmio:
    def test_window_dispatch(self):
        m = Memory()
        device = _ScratchDevice()
        m.register_mmio(0x1000_0000, 0x1000, device)
        m.store_int(0x1000_0008, 99, 8)
        assert device.regs[8] == 99
        assert m.load_int(0x1000_0008, 8) == 99
        assert device.loads == 1

    def test_ram_unaffected_outside_window(self):
        m = Memory()
        m.register_mmio(0x1000_0000, 0x1000, _ScratchDevice())
        m.store_int(0x2000, 7, 8)
        assert m.load_int(0x2000, 8) == 7

    def test_multiple_windows(self):
        m = Memory()
        a, b = _ScratchDevice(), _ScratchDevice()
        m.register_mmio(0x1000_0000, 0x100, a)
        m.register_mmio(0x2000_0000, 0x100, b)
        m.store_int(0x1000_0000, 1, 4)
        m.store_int(0x2000_0000, 2, 4)
        assert a.regs[0] == 1 and b.regs[0] == 2

    def test_program_drives_mmio(self):
        from repro.asm import assemble
        from repro.sim import Emulator

        device = _ScratchDevice()
        device.regs[0] = 1234
        memory = Memory()
        memory.register_mmio(0x1000_0000, 0x1000, device)
        program = assemble("""
        _start:
            li t0, 0x10000000
            ld a0, 0(t0)         # read the device register
            li t1, 55
            sd t1, 8(t0)         # write another
            li a7, 93
            ecall
        """)
        memory.load_program(program)
        emulator = Emulator(program, memory=memory, load=False)
        assert emulator.run() == 1234
        assert device.regs[8] == 55


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 1 << 20),
                          st.integers(0, (1 << 64) - 1),
                          st.sampled_from([1, 2, 4, 8])),
                min_size=1, max_size=50))
def test_store_load_property(ops):
    """The last store to an address wins, at any width."""
    m = Memory()
    shadow = {}
    for addr, value, size in ops:
        m.store_int(addr, value, size)
        for i in range(size):
            shadow[addr + i] = (value >> (8 * i)) & 0xFF
    for addr, byte in shadow.items():
        assert m.load_int(addr, 1) == byte
