"""Profiler tests (the CDS tooling reproduction, section IX)."""

from repro.asm import assemble
from repro.tools import profile_program

PROGRAM = assemble("""
    .data
arr: .zero 65536
    .text
_start:
    li s0, 200
    la s1, arr
hot_loop:
    ld t0, 0(s1)          # cold-missing load: the hot spot
    add t1, t1, t0
    addi s1, s1, 256
    addi s0, s0, -1
    bnez s0, hot_loop
    call helper
    li a0, 0
    li a7, 93
    ecall
helper:
    li t2, 30
spin:
    addi t2, t2, -1
    bnez t2, spin
    ret
""")


class TestProfiler:
    def test_counts_match_pipeline(self):
        profile = profile_program(PROGRAM)
        assert profile.stats.instructions == \
            sum(s.executions for s in profile.samples.values())

    def test_hot_load_attributed(self):
        profile = profile_program(PROGRAM)
        hottest = profile.hottest(3)
        # The striding load dominates memory stalls.
        assert any("ld" in s.text for s in hottest)
        load = next(s for s in profile.samples.values() if "ld " in s.text)
        assert load.mem_stall_cycles > 1000

    def test_execution_counts(self):
        profile = profile_program(PROGRAM)
        loads = [s for s in profile.samples.values() if "ld " in s.text]
        assert loads[0].executions == 200

    def test_regions_aggregate(self):
        profile = profile_program(PROGRAM)
        regions = {r.name: r for r in profile.regions}
        assert "hot_loop" in regions
        assert "helper" in regions or "spin" in regions
        assert regions["hot_loop"].executions >= 1000  # 200 x 5 insts

    def test_report_renders(self):
        profile = profile_program(PROGRAM)
        report = profile.report(top=5)
        assert "IPC" in report
        assert "hot" in report or "0x" in report

    def test_mispredict_attribution(self):
        # A data-dependent branch accumulates mispredict samples.
        program = assemble("""
        _start:
            li s0, 500
            li s1, 12345
            li s2, 1103515245
        loop:
            mul s1, s1, s2
            addi s1, s1, 1013
            srli t0, s1, 16
            andi t0, t0, 1
            beqz t0, skip
            addi t1, t1, 1
        skip:
            addi s0, s0, -1
            bnez s0, loop
            li a0, 0
            li a7, 93
            ecall
        """)
        profile = profile_program(program)
        branch_samples = [s for s in profile.samples.values()
                          if s.mispredicts > 0]
        assert branch_samples
        assert max(s.mispredicts for s in branch_samples) > 50
