"""SEC-DED codec: unit tests plus hypothesis round-trip properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ras.ecc import (
    EccStatus,
    check_bits,
    codeword_bits,
    flip_bits,
    parity,
    secded_decode,
    secded_encode,
)

WORD64 = st.integers(min_value=0, max_value=(1 << 64) - 1)
BITPOS = st.integers(min_value=0, max_value=codeword_bits(64) - 1)


class TestShapes:
    def test_72_64_code(self):
        assert check_bits(64) == 7
        assert codeword_bits(64) == 72

    @pytest.mark.parametrize("data_bits,total", [(8, 13), (16, 22),
                                                 (32, 39), (64, 72)])
    def test_widths(self, data_bits, total):
        assert codeword_bits(data_bits) == total

    def test_parity(self):
        assert parity(0) == 0
        assert parity(0b1011) == 1
        assert parity(0b11) == 0


class TestRoundTrip:
    @settings(max_examples=200)
    @given(WORD64)
    def test_clean_roundtrip(self, word):
        assert secded_decode(secded_encode(word)) == (word, EccStatus.CLEAN)

    @settings(max_examples=200)
    @given(WORD64, BITPOS)
    def test_single_bit_corrected(self, word, bit):
        corrupted = flip_bits(secded_encode(word), [bit])
        decoded, status = secded_decode(corrupted)
        assert status is EccStatus.CORRECTED
        assert decoded == word

    @settings(max_examples=200)
    @given(WORD64, st.lists(BITPOS, min_size=2, max_size=2, unique=True))
    def test_double_bit_detected(self, word, bits):
        corrupted = flip_bits(secded_encode(word), bits)
        _, status = secded_decode(corrupted)
        assert status is EccStatus.DETECTED

    @pytest.mark.parametrize("data_bits", [8, 16, 32])
    def test_narrow_widths_roundtrip(self, data_bits):
        for word in (0, 1, (1 << data_bits) - 1, 0xA5 % (1 << data_bits)):
            codeword = secded_encode(word, data_bits)
            assert secded_decode(codeword, data_bits) == (
                word, EccStatus.CLEAN)
            for bit in range(codeword_bits(data_bits)):
                decoded, status = secded_decode(
                    flip_bits(codeword, [bit]), data_bits)
                assert status is EccStatus.CORRECTED
                assert decoded == word
