"""Campaign runner: seeded sweeps classify every fault, no leaks."""

from repro.harness.ras_campaign import SAFE, CampaignResult, run_campaign
from repro.harness import run_ras


class TestCampaign:
    def test_small_sweep_is_covered(self):
        campaign = run_campaign(n=12, seed=99, control_n=2)
        assert campaign.total == 12
        assert campaign.unhandled == 0
        assert campaign.silent == 0
        assert campaign.coverage >= 0.9
        assert all(i.outcome in SAFE + ("silent",)
                   for i in campaign.injections)

    def test_campaign_is_deterministic(self):
        a = run_campaign(n=6, seed=7, control_n=1)
        b = run_campaign(n=6, seed=7, control_n=1)
        assert [i.outcome for i in a.injections] \
            == [i.outcome for i in b.injections]
        assert [i.detail for i in a.injections] \
            == [i.detail for i in b.injections]

    def test_lockstep_detections_carry_divergence_pc(self):
        campaign = run_campaign(n=10, seed=5, control_n=1)
        lockstep_hits = [i for i in campaign.injections
                         if i.outcome == "detected-lockstep"]
        assert lockstep_hits
        assert all(i.divergence_pc is not None for i in lockstep_hits)

    def test_empty_campaign_coverage(self):
        assert CampaignResult(workload="x").coverage == 1.0


class TestExperiment:
    def test_run_ras_renders(self):
        result = run_ras(quick=True)
        text = result.render()
        assert "fault-injection coverage" in result.title
        assert "silent corruption" in text
        assert "unhandled exceptions" in text
        assert result.raw["coverage"] >= 0.95
