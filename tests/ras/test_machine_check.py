"""Machine-check delivery: error banking CSRs and guest recovery."""

import pytest

from repro.asm import assemble
from repro.isa.csr import (
    CSR_MCECNT,
    MCERR_SOURCES,
    MCERR_UNCORRECTABLE,
    MCERR_VALID,
    TrapCause,
)
from repro.sim import Emulator, MachineCheckError

# A guest that installs a machine-check-aware handler: it banks the
# mcerr CSRs into memory, clears the error, and mret-resumes.  The main
# loop exits 0 only if the handler observed a valid error report.
RECOVERY_GUEST = """
    .data
    .align 3
seen:   .dword 0
addr:   .dword 0
    .text
_start:
    la t0, handler
    csrw mtvec, t0
    li t0, 60
spin:
    addi t0, t0, -1
    bnez t0, spin
    la t1, seen
    ld a0, 0(t1)
    beqz a0, fail
    li a0, 0
    li a7, 93
    ecall
fail:
    li a0, 1
    li a7, 93
    ecall
handler:
    csrr t2, mcerr
    la t3, seen
    sd t2, 0(t3)
    csrr t2, mcerraddr
    la t3, addr
    sd t2, 0(t3)
    csrw mcerr, x0
    mret
"""


class TestGuestRecovery:
    def test_handler_observes_and_recovers(self):
        program = assemble(RECOVERY_GUEST)
        emulator = Emulator(program)
        for _ in range(10):
            emulator.step()
        emulator.post_machine_check(0xCAFE0, source=MCERR_SOURCES["L1D"])
        assert emulator.run() == 0          # guest recovered and exited
        assert emulator.machine_checks == 1
        memory = emulator.state.memory
        seen = memory.load_int(program.symbol("seen"), 8)
        assert seen & MCERR_VALID
        assert seen & MCERR_UNCORRECTABLE
        assert (seen >> 8) & 0xFF == MCERR_SOURCES["L1D"]
        assert memory.load_int(program.symbol("addr"), 8) == 0xCAFE0

    def test_mcause_is_machine_check(self):
        program = assemble(RECOVERY_GUEST)
        emulator = Emulator(program)
        for _ in range(5):
            emulator.step()
        emulator.post_machine_check(0x1000)
        emulator.step()                     # delivery happens here
        from repro.isa.csr import CSR_MCAUSE
        assert emulator.state.csrs.read(CSR_MCAUSE) \
            == TrapCause.MACHINE_CHECK.value


class TestUnhandled:
    def test_no_handler_raises_structured_error(self):
        program = assemble("""
        _start:
            li t0, 100
        spin:
            addi t0, t0, -1
            bnez t0, spin
            li a7, 93
            ecall
        """)
        emulator = Emulator(program)
        emulator.step()
        emulator.post_machine_check(0xBEEF, source=MCERR_SOURCES["L2"])
        with pytest.raises(MachineCheckError) as excinfo:
            emulator.run()
        assert excinfo.value.addr == 0xBEEF
        assert excinfo.value.source == MCERR_SOURCES["L2"]

    def test_first_error_wins_the_bank(self):
        program = assemble("_start:\nnop\nnop\nnop\n")
        emulator = Emulator(program)
        emulator.post_machine_check(0x1111, source=1)
        emulator.post_machine_check(0x2222, source=2)
        with pytest.raises(MachineCheckError) as excinfo:
            emulator.step()
        assert excinfo.value.addr == 0x1111


class TestCorrectedCounting:
    def test_report_corrected_increments_mcecnt(self):
        program = assemble("_start:\nnop\n")
        emulator = Emulator(program)
        for _ in range(3):
            emulator.report_corrected(0x40)
        assert emulator.state.csrs.read(CSR_MCECNT) == 3
