"""Watchdog: instruction-limit expiry is a structured post-mortem."""

import pytest

from repro.asm import assemble
from repro.sim import Emulator, WatchdogExpired

HANG = """
_start:
    li s0, 123
spin:
    j spin
"""


class TestWatchdog:
    def test_expiry_raises_watchdog_with_dump(self):
        emulator = Emulator(assemble(HANG), instruction_limit=500)
        with pytest.raises(WatchdogExpired) as excinfo:
            emulator.run()
        exc = excinfo.value
        assert exc.pc == emulator.state.pc
        assert exc.regs[8] == 123           # s0 visible in the dump
        assert exc.backtrace                # disassembled window
        assert any("j" in line or "jal" in line for line in exc.backtrace)
        assert "watchdog" in str(exc)

    def test_constructor_limit_honoured(self):
        emulator = Emulator(assemble(HANG), instruction_limit=7)
        with pytest.raises(WatchdogExpired):
            emulator.run()
        assert emulator.state.instret == 7

    def test_max_steps_overrides_limit(self):
        emulator = Emulator(assemble(HANG), instruction_limit=10)
        with pytest.raises(WatchdogExpired):
            emulator.run(max_steps=3)
        assert emulator.state.instret == 3

    def test_normal_halt_does_not_raise(self):
        emulator = Emulator(assemble("""
        _start:
            li a0, 0
            li a7, 93
            ecall
        """), instruction_limit=100)
        assert emulator.run() == 0
        assert emulator.halted

    def test_watchdog_is_distinguishable_from_emulator_error(self):
        from repro.sim import EmulatorError

        assert issubclass(WatchdogExpired, EmulatorError)
        emulator = Emulator(assemble(HANG), instruction_limit=5)
        try:
            emulator.run()
        except WatchdogExpired:
            pass                            # the distinguishable path
        else:
            pytest.fail("watchdog did not fire")

    def test_trace_raises_watchdog(self):
        emulator = Emulator(assemble(HANG), instruction_limit=20)
        with pytest.raises(WatchdogExpired):
            for _ in emulator.trace():
                pass
