"""Lockstep golden checker: clean agreement and divergence pinpointing."""

from repro.asm import assemble
from repro.ras import (
    FaultInjector,
    FaultPlan,
    FaultTarget,
    LockstepChecker,
    check_program,
)
from repro.sim import Emulator


def _program():
    return assemble("""
    _start:
        li t0, 200
        li a0, 0
    loop:
        addi a0, a0, 3
        addi t0, t0, -1
        bnez t0, loop
        li a7, 93
        ecall
    """)


class TestCleanRun:
    def test_no_divergence(self):
        result = check_program(_program())
        assert result.ok
        assert result.divergence is None
        assert result.steps > 400

    def test_exit_codes_compared(self):
        result = check_program(assemble("""
        _start:
            li a0, 7
            li a7, 93
            ecall
        """))
        assert result.ok


class TestDivergence:
    def test_register_fault_pinpointed(self):
        program = _program()
        # Strike x10 (the accumulator) at instruction 50.
        plan = FaultPlan(FaultTarget.XREG, at_instret=50, index=10, bit=3)
        injector = FaultInjector(seed=1, plans=[plan])
        result = check_program(program, injector=injector)
        assert not result.ok
        divergence = result.divergence
        # Detected on the very instruction the fault struck.
        assert divergence.seq == 51
        assert any(name == "x10" for name, _, _ in divergence.diffs)
        assert divergence.window           # disassembled context present
        assert "addi" in " ".join(divergence.window)
        # The divergence pc is inside the loop body.
        body = range(program.entry, program.entry + 0x40)
        assert divergence.pc in body

    def test_pc_fault_detected(self):
        plan = FaultPlan(FaultTarget.PC, at_instret=30, bit=3)
        injector = FaultInjector(seed=2, plans=[plan])
        result = check_program(_program(), injector=injector)
        assert not result.ok
        assert result.divergence.reason.startswith(
            ("state-diff", "primary-crash"))

    def test_render_mentions_pc(self):
        plan = FaultPlan(FaultTarget.XREG, at_instret=10, index=5, bit=0)
        injector = FaultInjector(seed=3, plans=[plan])
        result = check_program(_program(), injector=injector)
        text = result.divergence.render()
        assert "divergence at pc=" in text
        assert "golden=" in text

    def test_primary_can_be_supplied(self):
        program = _program()
        primary = Emulator(program)
        checker = LockstepChecker(program, primary=primary)
        result = checker.run()
        assert result.ok
        assert primary.halted and checker.shadow.halted
