"""Fault injector: determinism under a seed, application semantics."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asm import assemble
from repro.ras import (
    ARCH_TARGETS,
    FaultInjector,
    FaultPlan,
    FaultTarget,
)
from repro.sim import Emulator


def _counting_program(iters=64):
    return assemble(f"""
    _start:
        li t0, {iters}
        li a0, 0
    loop:
        addi a0, a0, 1
        addi t0, t0, -1
        bnez t0, loop
        li a7, 93
        ecall
    """)


class TestDeterminism:
    @settings(max_examples=50)
    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_same_seed_same_plans(self, seed):
        a = FaultInjector(seed=seed).plan_random(8, window=10_000)
        b = FaultInjector(seed=seed).plan_random(8, window=10_000)
        assert a == b

    def test_different_seed_different_plans(self):
        a = FaultInjector(seed=1).plan_random(16, window=10_000)
        b = FaultInjector(seed=2).plan_random(16, window=10_000)
        assert a != b

    def test_plans_sorted_and_within_window(self):
        plans = FaultInjector(seed=9).plan_random(32, window=500)
        assert plans == sorted(plans, key=lambda p: p.at_instret)
        assert all(1 <= p.at_instret < 500 for p in plans)
        for plan in plans:
            if plan.target is FaultTarget.XREG:
                assert 1 <= plan.index < 32   # never x0

    def test_arch_only_targets(self):
        plans = FaultInjector(seed=3).plan_random(
            24, window=100, targets=ARCH_TARGETS)
        assert all(p.target in ARCH_TARGETS for p in plans)


class TestApplication:
    def test_xreg_flip_lands_at_instret(self):
        program = _counting_program()
        plan = FaultPlan(FaultTarget.XREG, at_instret=10, index=10, bit=7)
        injector = FaultInjector(seed=0, plans=[plan])
        emulator = Emulator(program, fault_injector=injector)
        clean = Emulator(program)
        for _ in range(10):
            emulator.step()
            clean.step()
        # strikes at the boundary AFTER instruction #10 retires
        assert emulator.state.regs == clean.state.regs
        emulator.step()
        clean.step()
        assert emulator.state.regs[10] == clean.state.regs[10] ^ (1 << 7)
        assert injector.records and injector.records[0].applied

    def test_fault_changes_result(self):
        program = _counting_program()
        plan = FaultPlan(FaultTarget.XREG, at_instret=20, index=10, bit=40)
        emulator = Emulator(program, fault_injector=FaultInjector(
            seed=0, plans=[plan]))
        emulator.run()
        # a0 (x10) carries the count: the high-bit flip survives to exit
        assert emulator.state.regs[10] != 64

    def test_cache_fault_without_cache_is_recorded_unapplied(self):
        program = _counting_program()
        plan = FaultPlan(FaultTarget.CACHE_DATA, at_instret=5)
        injector = FaultInjector(seed=0, plans=[plan])
        Emulator(program, fault_injector=injector).run()
        assert injector.records[0].applied is False
        assert "no cache" in injector.records[0].note
