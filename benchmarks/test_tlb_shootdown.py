"""Section V.E item (i): hardware TLB-maintenance broadcast vs IPIs.

"It can ... broadcast TLB maintenance information through the
interconnection bus.  The CPU cores and other peripheral IPs ... can
parse the information to maintain their own MMUs.  Compared with the
IPI (Inter-Processor Interrupt) scheme, the maintenance is performed by
hardware without software intervention, hence improving the efficiency."

Both schemes run as real 4-hart programs: the IPI version interrupts
every remote hart through the CLINT and waits for acknowledgements; the
broadcast version is one ``tlbi.bcast`` instruction.  The metric is the
instruction/work cost per shootdown.
"""

from repro.asm import assemble
from repro.sim import Emulator, Memory
from repro.smp.interrupts import attach_interrupt_controllers

SHOOTDOWNS = 20

IPI_PROGRAM = f"""
    .equ CLINT, 0x02000000
    .equ ROUNDS, {SHOOTDOWNS}
    .data
    .align 3
acks:  .dword 0
round: .dword 0
    .text
_start:
    csrr s0, mhartid
    la t0, handler
    csrw mtvec, t0
    bnez s0, remote_hart

# --- initiator (hart 0): for each round, IPI every remote hart and
# --- wait for all acknowledgements.
    li s1, 0                    # round
initiator_loop:
    la t0, acks
    sd x0, 0(t0)
    li t1, CLINT
    li t2, 1
    sw t2, 4(t1)                # msip[1]
    sw t2, 8(t1)                # msip[2]
    sw t2, 12(t1)               # msip[3]
wait_acks:
    la t0, acks
    ld t3, 0(t0)
    li t4, 3
    blt t3, t4, wait_acks
    la t0, round                # publish the new round
    addi s1, s1, 1
    sd s1, 0(t0)
    li t5, ROUNDS
    blt s1, t5, initiator_loop
    li a0, 0
    li a7, 93
    ecall

# --- remote harts: enable software interrupts and idle until all
# --- rounds are done.
remote_hart:
    li t0, 0x8                  # mie.MSIE
    csrw mie, t0
    li t0, 0x8                  # mstatus.MIE
    csrs mstatus, t0
remote_idle:
    la t1, round
    ld t2, 0(t1)
    li t3, ROUNDS
    blt t2, t3, remote_idle
    li a0, 0
    li a7, 93
    ecall

handler:                        # the shootdown handler on remote harts
    csrrw t0, mscratch, t0
    li t0, CLINT
    csrr t1, mhartid
    slli t1, t1, 2
    add t0, t0, t1
    sw x0, 0(t0)                # clear my msip
    sfence.vma                  # the actual TLB invalidation
    la t0, acks
    li t1, 1
    amoadd.d x0, t1, (t0)       # acknowledge
    csrrw t0, mscratch, t0
    mret
"""

BROADCAST_PROGRAM = f"""
    .equ ROUNDS, {SHOOTDOWNS}
    .data
    .align 3
round: .dword 0
    .text
_start:
    csrr s0, mhartid
    bnez s0, remote_hart
    li s1, 0
initiator_loop:
    tlbi.bcast                  # hardware broadcast: one instruction
    addi s1, s1, 1
    la t0, round
    sd s1, 0(t0)
    li t5, ROUNDS
    blt s1, t5, initiator_loop
    li a0, 0
    li a7, 93
    ecall
remote_hart:                    # remote harts keep computing untouched
    la t1, round
remote_idle:
    ld t2, 0(t1)
    li t3, ROUNDS
    blt t2, t3, remote_idle
    li a0, 0
    li a7, 93
    ecall
"""


def run_machine(source: str) -> tuple[list[int], int]:
    """Run on 4 harts with a shared CLINT; returns (exit codes, total
    instructions executed across all harts)."""
    program = assemble(source)
    memory = Memory()
    memory.load_program(program)
    harts = [Emulator(program, memory=memory, hart_id=i, load=False)
             for i in range(4)]
    clint, plic = attach_interrupt_controllers(memory, harts=4)
    for index, hart in enumerate(harts):
        hart.interrupt_fn = (lambda i: lambda: clint.pending(i))(index)
    active = True
    steps = 0
    while active:
        active = False
        for hart in harts:
            if hart.halted:
                continue
            for _ in range(4):
                if hart.halted:
                    break
                hart.step()
            steps += 1
            active = True
        if steps > 2_000_000:
            raise RuntimeError("shootdown benchmark did not converge")
    return ([h.exit_code for h in harts],
            sum(h.state.instret for h in harts))


def test_broadcast_beats_ipi(benchmark):
    def compare():
        ipi_codes, ipi_insts = run_machine(IPI_PROGRAM)
        bc_codes, bc_insts = run_machine(BROADCAST_PROGRAM)
        return ipi_codes, ipi_insts, bc_codes, bc_insts

    ipi_codes, ipi_insts, bc_codes, bc_insts = benchmark.pedantic(
        compare, rounds=1, iterations=1)
    assert ipi_codes == [0, 0, 0, 0]
    assert bc_codes == [0, 0, 0, 0]
    # Remote-hart spin loops dominate raw counts; compare the
    # *initiator + handler* work: instructions beyond the shared idle
    # baseline. The broadcast initiator does ~6 instructions per round;
    # the IPI scheme adds 3 interrupts + handler + ack spin per round.
    print(f"\nTLB shootdown x{SHOOTDOWNS} on 4 harts:")
    print(f"  IPI scheme:       {ipi_insts} total instructions")
    print(f"  hardware bcast:   {bc_insts} total instructions")
    assert bc_insts < ipi_insts
