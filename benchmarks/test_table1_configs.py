"""Table I: the supported configuration space builds and runs."""

from repro.harness.table1 import run_table1


def test_table1(experiment):
    result = experiment(run_table1, quick=True)
    rows = {r.name: r.measured for r in result.rows}
    assert rows["configurations built"] == 72
    assert rows["single-core smoke runs"] >= 1
