"""RAS: seeded fault-injection coverage on the CoreMark-like kernel."""

from repro.harness.ras_campaign import run_ras


def test_ras(experiment):
    result = experiment(run_ras, quick=False)
    # Acceptance bar: >= 95% of single-bit strikes corrected or
    # detected, zero silent corruptions, zero unhandled exceptions.
    assert result.raw["coverage"] >= 0.95
    assert result.raw["silent"] == 0
    assert result.raw["unhandled"] == 0
