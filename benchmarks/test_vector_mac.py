"""Section VII: vector MAC throughput and latency claims."""

from repro.harness.vecmac import run_vecmac


def test_vecmac(experiment):
    result = experiment(run_vecmac, quick=True)
    rows = {r.name: r.measured for r in result.rows}
    assert rows["peak 16-bit MACs/cycle"] == 16
    assert rows["vs A73 NEON peak"] == 2.0
    assert rows["vector vs scalar MAC speedup"] > 2.0
    assert rows["vector FP mul latency"] == 5
    assert 6 <= rows["vector divide latency"] <= 25
    assert 3 <= rows["vector ALU latency"] <= 4
