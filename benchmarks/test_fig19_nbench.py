"""Fig. 19: NBench-like suite vs Cortex-A73 — parity overall."""

from repro.harness.fig19 import run_fig19


def test_fig19(experiment):
    result = experiment(run_fig19, quick=True)
    geomean = result.rows[-1].measured
    assert 0.8 <= geomean <= 1.25, geomean
