"""Section I: blockchain acceleration arithmetic."""

from repro.harness.blockchain import run_blockchain


def test_blockchain(experiment):
    result = experiment(run_blockchain, quick=True)
    rows = {r.name: r.measured for r in result.rows}
    # The custom rotates measurably accelerate the hash.
    assert rows["XT-extension speedup on hash"] > 1.15
    # The ASIC projection reproduces the paper's 12-15x over Xeon.
    assert abs(rows["ASIC@2.0GHz vs Xeon"] - 12.0) < 0.5
    assert abs(rows["ASIC@2.5GHz vs Xeon"] - 15.0) < 0.5
