"""Fig. 17: the CoreMark/MHz ladder across embedded cores.

Shape assertions: XT-910 tops the ladder, the dual-issue in-order cores
(U74/A55/SweRV) form the middle band, single-issue and
restricted-dual-issue cores trail, and the headline "40% faster than
U74" claim holds to within modeling tolerance.
"""

from repro.harness.fig17 import run_fig17


def test_fig17(experiment):
    result = experiment(run_fig17, quick=True)
    ipc = result.raw["ipc"]
    # XT-910 tops the ladder.
    assert ipc["xt910"] == max(ipc.values())
    # The paper's headline: ~40% over the U74 (allow 1.25x - 1.75x).
    ratio = ipc["xt910"] / ipc["u74"]
    assert 1.25 <= ratio <= 1.75, ratio
    # Middle band above the weak cores.
    for strong in ("u74", "cortex-a55", "swerv"):
        for weak in ("cortex-a53", "u54"):
            assert ipc[strong] > ipc[weak], (strong, weak)
    # Single-issue U54 is the slowest.
    assert ipc["u54"] == min(ipc.values())
