"""Fig. 20: extensions + optimized compiler ~= +20%."""

from repro.harness.fig20 import run_fig20


def test_fig20(experiment):
    result = experiment(run_fig20, quick=True)
    geomean = result.rows[-1].measured
    # "Improved by about 20%": accept 1.1x - 1.45x.
    assert 1.10 <= geomean <= 1.45, geomean
    # Every kernel must benefit (no regressions from the optimizer).
    for speedup in result.raw["speedups"]:
        assert speedup > 1.0
