"""Section V.E: huge pages cut TLB misses and walk work.

"It supports huge page mapping, which is an important feature required
by Linux OS to reduce TLB miss rate.  The MMU provides 3 levels table
mapping. Each level can be mapped as a leaf table entry."  The bench
scans a 256 MiB region mapped with 4K / 2M / 1G pages and reports TLB
misses and page-table-walk loads for each size.
"""

from repro.mem import PageTableBuilder, PageTableWalker, Tlb, TlbConfig
from repro.sim import Memory

REGION = 256 << 20      # 256 MiB
STRIDE = 1 << 16        # one access per 64 KiB
PASSES = 2


def scan(page_size: int) -> tuple[int, int]:
    """(tlb_misses, pte_loads) for scanning the region twice."""
    memory = Memory()
    builder = PageTableBuilder(memory)
    builder.identity_map(0x4000_0000, REGION, page_size=page_size)
    walker = PageTableWalker(memory, builder.root)
    tlb = Tlb(TlbConfig())
    misses = 0
    for _ in range(PASSES):
        for offset in range(0, REGION, STRIDE):
            vaddr = 0x4000_0000 + offset
            _, entry = tlb.translate(vaddr)
            if entry is None:
                misses += 1
                translation = walker.walk(vaddr)
                tlb.refill(vaddr, page_size=translation.page_size)
    return misses, walker.pte_loads


def test_huge_pages_reduce_tlb_misses(benchmark):
    def sweep():
        return {size: scan(size)
                for size in (4096, 2 << 20, 1 << 30)}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    label = {4096: "4K", 2 << 20: "2M", 1 << 30: "1G"}
    print("\nTLB behaviour scanning 256 MiB twice (64 KiB stride):")
    for size, (misses, pte_loads) in results.items():
        print(f"  {label[size]:>3} pages: {misses:6d} TLB misses, "
              f"{pte_loads:6d} PTE loads")

    m4k, _ = results[4096]
    m2m, _ = results[2 << 20]
    m1g, _ = results[1 << 30]
    # 4K: 65536 pages, far beyond jTLB reach: every touch misses.
    accesses = PASSES * (REGION // STRIDE)
    assert m4k == accesses
    # 2M: 128 pages fit the jTLB: only cold misses remain.
    assert m2m == 128
    # 1G: a single page: one miss total.
    assert m1g == 1
    # Walk depth also shrinks with huge pages (3 -> 2 -> 1 PTE loads).
    assert results[4096][1] == 3 * m4k
    assert results[2 << 20][1] == 2 * m2m
    assert results[1 << 30][1] == 1 * m1g
