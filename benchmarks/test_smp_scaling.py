"""Section VI: multi-core cluster scaling and the snoop filter.

Not a numbered figure — the paper claims SMP with cache coherence and
a snoop filter that "effectively reduces the inter-core
communications"; these benches quantify both on the timing model.
"""

from repro.asm import assemble
from repro.smp import CoherenceConfig, CoherentCluster
from repro.smp.timing import run_smp_timing

PARALLEL = """
    .text
_start:
    csrr s0, mhartid
    li t0, 0x100000
    slli t1, s0, 16
    add s1, t0, t1
    li s2, 3000
loop:
    andi t2, s2, 0x7FF
    slli t3, t2, 3
    add t3, s1, t3
    ld t4, 0(t3)
    addi t4, t4, 1
    sd t4, 0(t3)
    addi s2, s2, -1
    bnez s2, loop
    li a0, 0
    li a7, 93
    ecall
"""


def test_cluster_scaling(benchmark):
    program = assemble(PARALLEL, compress=True)

    def scale():
        return {cores: run_smp_timing(program, cores=cores)
                for cores in (1, 2, 4)}

    results = benchmark.pedantic(scale, rounds=1, iterations=1)
    single = results[1].makespan
    print("\ncluster scaling (same per-core work):")
    for cores, result in results.items():
        throughput = result.total_instructions / result.makespan
        print(f"  {cores} core(s): makespan {result.makespan:7d} "
              f"aggregate {throughput:5.2f} inst/cycle")
    # Per-core work is constant: the makespan must stay near-flat, so
    # aggregate throughput scales with the core count.
    assert results[4].makespan < single * 1.6
    agg1 = results[1].total_instructions / results[1].makespan
    agg4 = results[4].total_instructions / results[4].makespan
    assert agg4 > agg1 * 2.5


def test_snoop_filter_traffic(benchmark):
    """Snoop filter: probes only go to actual sharers."""

    def traffic():
        counts = {}
        for snoop_filter in (True, False):
            cluster = CoherentCluster(CoherenceConfig(
                cores=4, snoop_filter=snoop_filter))
            for core in range(4):
                base = 0x100000 * (core + 1)
                for i in range(256):
                    cluster.access(core, base + i * 64, is_write=(i % 4 == 0))
            counts[snoop_filter] = cluster.stats.snoops_sent
        return counts

    counts = benchmark.pedantic(traffic, rounds=1, iterations=1)
    print(f"\nsnoops with filter: {counts[True]}, "
          f"broadcast: {counts[False]}")
    assert counts[True] == 0          # disjoint working sets: no probes
    assert counts[False] > 1000       # broadcast probes every miss
