"""Fig. 18: EEMBC-like suite vs Cortex-A73 — parity overall."""

from repro.harness.fig18 import run_fig18


def test_fig18(experiment):
    result = experiment(run_fig18, quick=True)
    geomean = result.rows[-1].measured
    # "On par with the ARM Cortex-A73": geometric mean within +-20%.
    assert 0.8 <= geomean <= 1.25, geomean
    # Per-kernel scatter exists (the paper's figure is not flat).
    ratios = result.raw["ratios"]
    assert max(ratios) > 1.05 and min(ratios) < 0.95
