"""Benchmark harness: each test regenerates one paper table/figure.

Run with ``pytest benchmarks/ --benchmark-only``.  Every benchmark
executes its experiment once (rounds=1 — these are deterministic
simulations, not microbenchmarks), prints the paper-vs-measured table,
and asserts the result's *shape* so the suite doubles as a regression
harness for the reproduction claims.
"""

import pytest


def run_once(benchmark, fn, **kwargs):
    """Run an experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, kwargs=kwargs, rounds=1, iterations=1,
                              warmup_rounds=0)


@pytest.fixture
def experiment(benchmark):
    def runner(fn, **kwargs):
        result = run_once(benchmark, fn, **kwargs)
        print()
        print(result.render())
        return result
    return runner
