"""Fig. 21: the prefetch ablation on STREAM at 200-cycle DRAM.

Shape assertions follow the paper's ordering:
a (1.0) << b < c <= d, with e slightly below d (the TLB-prefetch cost).
"""

from repro.harness.fig21 import run_fig21


def test_fig21(experiment):
    result = experiment(run_fig21, quick=True)
    cycles = result.raw["cycles"]
    speedup = {s: cycles["a"] / cycles[s] for s in "abcde"}
    # L1 prefetch alone is transformative (paper: 3.8x; accept 2.5-4.5).
    assert 2.5 <= speedup["b"] <= 4.5, speedup["b"]
    # Adding L2 + TLB prefetch helps further (paper: 4.9x).
    assert speedup["c"] > speedup["b"]
    # Large distance is the maximum (paper: 5.4x; accept 4.5-6.5).
    assert speedup["d"] >= speedup["c"]
    assert 4.5 <= speedup["d"] <= 6.5, speedup["d"]
    # Disabling TLB prefetch costs a few percent (paper: 2.4%).
    assert cycles["e"] >= cycles["d"]
    drop = (cycles["e"] - cycles["d"]) / cycles["d"]
    assert drop <= 0.12, drop
