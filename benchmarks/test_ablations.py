"""Ablations of the XT-910's headline design choices.

Each test switches one paper-described mechanism off and measures the
cost on a workload chosen to exercise it — quantifying what each
feature buys, the analysis DESIGN.md calls out.
"""

from dataclasses import replace

import pytest

from repro.harness.runner import run_on_core
from repro.uarch.presets import xt910
from repro.workloads.coremark import coremark_suite, list_kernel
from repro.workloads.stream import stream_kernel
from repro.asm import assemble


def run_cycles(program, config):
    return run_on_core(program, config).cycles


def total_cycles(config, workloads):
    return sum(run_cycles(w.program(), config) for w in workloads)


@pytest.fixture(scope="module")
def base_config():
    return xt910()


SMALL_LOOP = assemble("""
_start:
    li s0, 3000
    li t1, 0
loop:
    add t1, t1, s0
    addi s0, s0, -1
    bnez s0, loop
    li a0, 0
    li a7, 93
    ecall
""", compress=True)


class TestFrontendAblations:
    def test_loop_buffer(self, benchmark, base_config):
        """Section III.C: the LBUF eliminates I$ accesses on small loops."""
        no_lbuf = replace(base_config, frontend=replace(
            base_config.frontend,
            loop_buffer=replace(base_config.frontend.loop_buffer,
                                enabled=False)))

        def ablation():
            with_l = run_on_core(SMALL_LOOP, base_config)
            without = run_on_core(SMALL_LOOP, no_lbuf)
            return with_l, without

        with_l, without = benchmark.pedantic(ablation, rounds=1,
                                             iterations=1)
        assert with_l.stats.lbuf_supplied > 5000
        assert with_l.cycles <= without.cycles + 2
        # The power story: LBUF cuts instruction-fetch traffic.
        assert with_l.pipeline.hier.stats.inst_fetches \
            < without.pipeline.hier.stats.inst_fetches * 0.7

    def test_l0_btb(self, benchmark, base_config):
        """Section III.B: the L0 BTB removes taken-branch bubbles."""
        from repro.uarch.btb import BtbConfig

        no_l0 = replace(base_config, frontend=replace(
            base_config.frontend,
            btb=BtbConfig(l0_entries=0, l1_entries=1024, l1_ways=4),
            loop_buffer=replace(base_config.frontend.loop_buffer,
                                enabled=False)))
        with_l0 = replace(base_config, frontend=replace(
            base_config.frontend,
            loop_buffer=replace(base_config.frontend.loop_buffer,
                                enabled=False)))

        def ablation():
            return (run_on_core(SMALL_LOOP, with_l0),
                    run_on_core(SMALL_LOOP, no_l0))

        with_r, without_r = benchmark.pedantic(ablation, rounds=1,
                                               iterations=1)
        assert without_r.stats.taken_branch_bubbles \
            > with_r.stats.taken_branch_bubbles
        assert with_r.cycles <= without_r.cycles

    def test_two_level_prediction_buffers(self, benchmark, base_config):
        """Section III.A: BUF1/BUF2 let adjacent-cycle branches predict."""
        from repro.uarch.branch import DirectionConfig

        no_buffers = replace(base_config, frontend=replace(
            base_config.frontend,
            direction=DirectionConfig(two_level_buffers=False)))
        workloads = [list_kernel()]

        def ablation():
            return (total_cycles(base_config, workloads),
                    total_cycles(no_buffers, workloads))

        with_c, without_c = benchmark.pedantic(ablation, rounds=1,
                                               iterations=1)
        assert with_c <= without_c


class TestLsuAblations:
    def test_dual_issue_lsu(self, benchmark, base_config):
        """Section V.A: the only RISC-V dual-issue LSU of its time."""
        single = replace(base_config,
                         lsu=replace(base_config.lsu, dual_issue=False))
        workload = stream_kernel("copy", elems=4096)

        def ablation():
            return (run_cycles(workload.program(), base_config),
                    run_cycles(workload.program(), single))

        dual_c, single_c = benchmark.pedantic(ablation, rounds=1,
                                              iterations=1)
        assert dual_c < single_c
        print(f"\ndual-issue LSU: {single_c} -> {dual_c} cycles "
              f"({single_c / dual_c:.2f}x) on STREAM copy")

    def test_pseudo_double_store(self, benchmark, base_config):
        """Section V.B: splitting st.addr/st.data decouples address
        generation from late-arriving data."""
        fused = replace(base_config,
                        lsu=replace(base_config.lsu,
                                    pseudo_dual_store=False))
        program = assemble("""
        .data
        buf: .zero 8192
        .text
        _start:
            la s1, buf
            li s0, 800
            li s3, 3
        loop:
            mul t0, s0, s3
            mul t0, t0, s3     # store data arrives late
            sd t0, 0(s1)
            ld t1, 8(s1)       # independent load must disambiguate
            add t2, t2, t1
            addi s1, s1, 16
            addi s0, s0, -1
            bnez s0, loop
            li a0, 0
            li a7, 93
            ecall
        """, compress=True)

        def ablation():
            return (run_cycles(program, base_config),
                    run_cycles(program, fused))

        split_c, fused_c = benchmark.pedantic(ablation, rounds=1,
                                              iterations=1)
        assert split_c <= fused_c

    def test_memory_dependence_predictor(self, benchmark, base_config):
        """Section V.A: tagging violating loads avoids repeated global
        flushes."""
        no_memdep = replace(base_config,
                            lsu=replace(base_config.lsu,
                                        memdep_predictor=False))
        # Same-address store->load with late store data: a violation
        # factory without the predictor.
        program = assemble("""
        .data
        cell: .zero 64
        .text
        _start:
            la s1, cell
            li s0, 600
            li s3, 7
        loop:
            mul t0, s0, s3
            mul t0, t0, s3
            sd t0, 0(s1)
            ld t1, 0(s1)       # depends on the store above
            add t2, t2, t1
            addi s0, s0, -1
            bnez s0, loop
            li a0, 0
            li a7, 93
            ecall
        """, compress=True)

        def ablation():
            return (run_on_core(program, base_config),
                    run_on_core(program, no_memdep))

        with_r, without_r = benchmark.pedantic(ablation, rounds=1,
                                               iterations=1)
        assert with_r.stats.lsu_violations < without_r.stats.lsu_violations
        assert with_r.cycles <= without_r.cycles


class TestBackendAblations:
    def test_rob_size(self, benchmark, base_config):
        """192-entry ROB: the run-ahead window behind the MLP."""
        small_rob = replace(base_config, rob_entries=32)
        workload = stream_kernel("triad", elems=4096)

        def ablation():
            return (run_cycles(workload.program(), base_config),
                    run_cycles(workload.program(), small_rob))

        big_c, small_c = benchmark.pedantic(ablation, rounds=1,
                                            iterations=1)
        assert big_c <= small_c

    def test_out_of_order_execution(self, benchmark, base_config):
        """The headline: OoO vs in-order on the CoreMark suite."""
        inorder = replace(base_config, out_of_order=False,
                          rob_entries=8, iq_entries=8)
        workloads = coremark_suite()

        def ablation():
            return (total_cycles(base_config, workloads),
                    total_cycles(inorder, workloads))

        ooo_c, ino_c = benchmark.pedantic(ablation, rounds=1, iterations=1)
        assert ooo_c < ino_c * 0.75
        print(f"\nOoO vs in-order on CoreMark suite: {ino_c} -> {ooo_c} "
              f"cycles ({ino_c / ooo_c:.2f}x)")

    def test_mshr_count(self, benchmark, base_config):
        """MSHRs bound memory-level parallelism on demand-miss streams
        (prefetchers off so misses actually reach the MSHRs)."""
        from repro.mem.prefetch import PrefetchConfig

        no_pf = replace(base_config.mem,
                        l1_prefetch=PrefetchConfig.disabled(),
                        l2_prefetch=PrefetchConfig.disabled())
        many = replace(base_config, mem=replace(no_pf, mshrs=4))
        one = replace(base_config, mem=replace(no_pf, mshrs=1))
        workload = stream_kernel("add", elems=8192)

        def ablation():
            return (run_cycles(workload.program(), many),
                    run_cycles(workload.program(), one))

        many_c, one_c = benchmark.pedantic(ablation, rounds=1, iterations=1)
        assert many_c < one_c
        print(f"\nMSHR 1 -> 4: {one_c} -> {many_c} cycles "
              f"({one_c / many_c:.2f}x MLP gain)")
