"""Section V.E: wide ASIDs cut context-switch TLB flushes ~10x."""

from repro.harness.asid import run_asid


def test_asid(experiment):
    result = experiment(run_asid, quick=True)
    rows = {r.name: r.measured for r in result.rows}
    # The 13-bit-predecessor comparison lands on "almost 10X".
    assert 6.0 <= rows["13-bit baseline ratio"] <= 12.0
    # Monotone: narrower ASIDs always flush more.
    assert rows["8-bit baseline ratio"] > rows["12-bit baseline ratio"] \
        > rows["13-bit baseline ratio"] > rows["14-bit baseline ratio"]
