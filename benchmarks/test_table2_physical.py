"""Table II: frequency/area/power from the calibrated analytical model."""

from repro.harness.table2 import run_table2


def test_table2(experiment):
    result = experiment(run_table2, quick=True)
    for row in result.rows:
        paper, measured = float(row.paper), float(row.measured)
        assert abs(measured - paper) / paper <= 0.10, row.name
