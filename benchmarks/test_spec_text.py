"""SPECint-like: XT-910 close to but not above+10% of the A73."""

from repro.harness.spec import run_spec


def test_spec(experiment):
    result = experiment(run_spec, quick=True)
    ratio = result.raw["xt_ipc"] / result.raw["a73_ipc"]
    # Paper: 10% lower. Accept the band [0.8, 1.05]: parity-class with
    # the A73 modestly ahead on large-footprint workloads.
    assert 0.80 <= ratio <= 1.05, ratio
