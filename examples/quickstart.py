"""Quickstart: assemble a RISC-V program, run it, and time it on XT-910.

    python examples/quickstart.py
"""

from repro.asm import assemble
from repro.harness import run_on_core
from repro.sim import run_program

SOURCE = """
    .data
data:   .word 5, 3, 8, 1, 9, 2, 7, 4
    .align 3
result: .dword 0
    .text
_start:
    la s0, data
    li s1, 8              # element count
    li s2, 0              # running maximum
    li s3, 0              # running sum
    li t0, 0
loop:
    slli t1, t0, 2
    add t2, s0, t1
    lw t3, 0(t2)
    add s3, s3, t3
    ble t3, s2, not_max
    mv s2, t3
not_max:
    addi t0, t0, 1
    blt t0, s1, loop

    la t4, result
    sd s3, 0(t4)
    mv a0, s2             # exit code = max element
    li a7, 93
    ecall
"""


def main() -> None:
    # 1. Assemble (with RVC compression, like a real RV64GC toolchain).
    program = assemble(SOURCE, compress=True)
    print(f"assembled {len(program.text)} bytes of text, "
          f"{len(program.data)} bytes of data")

    # 2. Run functionally on the RV64GCV emulator.
    emulator = run_program(program)
    total = emulator.state.memory.load_int(program.symbol("result"), 8)
    print(f"functional run: max={emulator.exit_code} sum={total} "
          f"({emulator.state.instret} instructions)")

    # 3. Time the same binary on the XT-910 pipeline model...
    program_clean = assemble(SOURCE.replace("mv a0, s2", "li a0, 0"),
                             compress=True)
    xt = run_on_core(program_clean, "xt910")
    print(f"\nxt910:      {xt.cycles:5d} cycles, IPC {xt.ipc:.2f}")

    # ...and on the comparison cores from the paper's Fig. 17.
    for core in ("u74", "cortex-a55", "u54"):
        r = run_on_core(program_clean, core)
        print(f"{core:11s} {r.cycles:5d} cycles, IPC {r.ipc:.2f}")

    print("\npipeline detail (xt910):")
    print(xt.stats.summary())


if __name__ == "__main__":
    main()
