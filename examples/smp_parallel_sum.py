"""SMP on a 4-core cluster (section VI): atomics, locks, coherence.

Runs a real parallel-sum program on four harts sharing memory (with
LR/SC and AMO synchronization), then replays the sharing pattern
through the MOSEI coherence model to show what the snoop filter saves.

    python examples/smp_parallel_sum.py
"""

from repro.asm import assemble
from repro.smp import CoherenceConfig, CoherentCluster, run_smp

PARALLEL_SUM = """
    .equ N, 4096
    .data
    .align 3
arr:    .zero 32768
total:  .dword 0
done:   .dword 0
    .text
_start:
    csrr s0, mhartid
    la s1, arr
    bnez s0, wait_init
    li t0, 0
    li t1, N
init:
    slli t2, t0, 3
    add t3, s1, t2
    addi t4, t0, 1
    sd t4, 0(t3)
    addi t0, t0, 1
    blt t0, t1, init
    la t5, done
    li t6, 1
    amoswap.d x0, t6, (t5)
    j compute
wait_init:
    la t5, done
spin:
    ld t6, 0(t5)
    beqz t6, spin
compute:
    li t0, N
    srli t0, t0, 2
    mul t1, s0, t0
    add t2, t1, t0
    li t3, 0
sum_loop:
    slli t4, t1, 3
    add t5, s1, t4
    ld t6, 0(t5)
    add t3, t3, t6
    addi t1, t1, 1
    blt t1, t2, sum_loop
    la t5, total
    amoadd.d x0, t3, (t5)
    li a0, 0
    li a7, 93
    ecall
"""


def main() -> None:
    program = assemble(PARALLEL_SUM)
    result = run_smp(program, cores=4, interleave=4)
    total = result.memory.load_int(program.symbol("total"), 8)
    expected = 4096 * 4097 // 2
    print("4-hart parallel sum over shared memory")
    print(f"  result {total} (expected {expected}) "
          f"{'OK' if total == expected else 'MISMATCH'}")
    print(f"  per-hart instruction counts: {result.steps}\n")

    # Coherence cost of the sharing pattern, with and without the
    # snoop filter the paper credits for reducing inter-core traffic.
    for snoop_filter in (True, False):
        cluster = CoherentCluster(CoherenceConfig(
            cores=4, snoop_filter=snoop_filter))
        # each core streams its private quarter, then all bang on 'total'
        for core in range(4):
            base = 0x10000 + core * 8192
            for offset in range(0, 8192, 64):
                cluster.access(core, base + offset, is_write=False)
        for i in range(64):
            cluster.access(i % 4, 0x40000, is_write=True)
        s = cluster.stats
        label = "with snoop filter" if snoop_filter else "broadcast snooping"
        print(f"  {label:20s} snoops={s.snoops_sent:4d} "
              f"invalidations={s.invalidations:3d} "
              f"cache-to-cache={s.cache_to_cache:3d}")


if __name__ == "__main__":
    main()
