"""The paper's flagship deployment (section I): blockchain acceleration.

The FPGA edition (200 MHz) beats a Xeon 8163 core at 2.5 GHz by 20% on
blockchain transactions, and the 2.0-2.5 GHz ASIC is projected at
12-15x the Xeon.  This example runs the SHA-256-style hash kernel on
the XT-910 model — once with the base RISC-V ISA and once with the XT
bit-manipulation extensions — and reprojects the paper's deployment
arithmetic from the measured cycle counts.

    python examples/blockchain_accelerator.py
"""

from repro.harness import run_on_core
from repro.workloads.blockchain import blockchain_kernel

FPGA_MHZ = 200
XEON_MARGIN = 1.2      # the paper's measured FPGA-over-Xeon per-core edge


def main() -> None:
    blocks = 24
    xt = run_on_core(blockchain_kernel(xt=True, blocks=blocks).program(),
                     "xt910")
    base = run_on_core(blockchain_kernel(xt=False, blocks=blocks).program(),
                       "xt910")

    print("SHA-256-style compression, 16 rounds x "
          f"{blocks} blocks on the XT-910 model\n")
    print(f"  base RV64GC ISA:   {base.cycles:6d} cycles "
          f"(IPC {base.ipc:.2f})")
    print(f"  with XT rotates:   {xt.cycles:6d} cycles "
          f"(IPC {xt.ipc:.2f})")
    print(f"  extension speedup: {base.cycles / xt.cycles:.2f}x "
          "(srriw replaces srliw/slliw/or chains)\n")

    cycles_per_block = xt.cycles / blocks
    fpga_rate = FPGA_MHZ * 1e6 / cycles_per_block
    xeon_rate = fpga_rate / XEON_MARGIN
    print(f"  FPGA @200 MHz:     {fpga_rate:12,.0f} blocks/s "
          f"(paper: 1.2x a 2.5 GHz Xeon core)")
    print(f"  implied Xeon core: {xeon_rate:12,.0f} blocks/s")
    for ghz in (2.0, 2.5):
        asic_rate = ghz * 1e9 / cycles_per_block
        print(f"  ASIC @{ghz} GHz:     {asic_rate:12,.0f} blocks/s "
              f"= {asic_rate / xeon_rate:4.1f}x Xeon "
              f"(paper projects 12-15x)")


if __name__ == "__main__":
    main()
