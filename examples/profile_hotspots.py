"""Profiling a workload with the CDS-style profiler (section IX).

The paper's toolchain ships a graphical profiler over its simulator
(Fig. 15/16); this example runs its textual equivalent over the
CoreMark matrix kernel and prints the hot spots.

    python examples/profile_hotspots.py
"""

from repro.tools import profile_program
from repro.workloads.coremark import matrix_kernel


def main() -> None:
    workload = matrix_kernel()
    print(f"profiling {workload.name} on xt910...\n")
    profile = profile_program(workload.program())
    print(profile.report(top=12))


if __name__ == "__main__":
    main()
