"""A tiny preemptive 'OS' on the XT-910 model.

Ties together the OS-facing subsystems the paper describes: the CLINT
timer drives preemption, an M-mode scheduler context-switches between
two compute tasks, and the run ends when both tasks finish.  (Linux
bootability is the paper's claim; this is its minimal mechanical core:
timer interrupts, privileged state save/restore, mret.)

    python examples/tiny_os.py
"""

from repro.asm import assemble
from repro.sim import Emulator, Memory
from repro.smp.interrupts import attach_interrupt_controllers

KERNEL = """
    .equ CLINT, 0x02000000
    .equ QUANTUM, 120
    .data
    .align 3
current:   .dword 0          # running task index
ctx0:      .zero 256         # saved registers, task 0
ctx1:      .zero 256
done0:     .dword 0
done1:     .dword 0
switches:  .dword 0
    .text
_start:
    la t0, scheduler
    csrw mtvec, t0
    # context 1 starts at task1 with its own stack
    la t1, ctx1
    la t2, task1
    sd t2, 248(t1)           # saved pc
    li t3, 0xF00000
    sd t3, 16(t1)            # saved sp
    # arm the timer and enable machine timer interrupts
    call arm_timer
    li t4, 0x80
    csrw mie, t4
    li t4, 0x8
    csrs mstatus, t4
    # fall through into task 0

task0:
    li s0, 1500
t0_loop:
    addi s0, s0, -1
    bnez s0, t0_loop
    la t0, done0
    li t1, 1
    sd t1, 0(t0)
t0_wait:
    la t0, done1
    ld t1, 0(t0)
    beqz t1, t0_wait
    # both done: report switch count
    la t0, switches
    ld a0, 0(t0)
    li a7, 93
    ecall

task1:
    li s0, 1500
t1_loop:
    addi s0, s0, -1
    bnez s0, t1_loop
    la t0, done1
    li t1, 1
    sd t1, 0(t0)
t1_spin:
    j t1_spin                # task 0 exits the machine

arm_timer:
    li t5, CLINT
    li t6, 0xBFF8
    add t6, t5, t6
    ld a1, 0(t6)             # mtime
    addi a1, a1, QUANTUM
    li t6, 0x4000
    add t6, t5, t6
    sd a1, 0(t6)             # mtimecmp
    ret

scheduler:
    # save the outgoing task's context (subset: s0, sp, pc)
    csrrw t0, mscratch, t0   # scratch t0
    la t0, current
    ld t1, 0(t0)
    la t2, ctx0
    beqz t1, save_ctx
    la t2, ctx1
save_ctx:
    sd s0, 8(t2)
    sd sp, 16(t2)
    csrr t3, mepc
    sd t3, 248(t2)
    # flip tasks
    xori t1, t1, 1
    sd t1, 0(t0)
    la t2, ctx0
    beqz t1, load_ctx
    la t2, ctx1
load_ctx:
    ld s0, 8(t2)
    ld sp, 16(t2)
    ld t3, 248(t2)
    csrw mepc, t3
    # count the switch, rearm, return to the incoming task
    la t4, switches
    ld t5, 0(t4)
    addi t5, t5, 1
    sd t5, 0(t4)
    call arm_timer
    csrrw t0, mscratch, t0
    mret
"""


def main() -> None:
    program = assemble(KERNEL)
    memory = Memory()
    memory.load_program(program)
    emulator = Emulator(program, memory=memory, load=False)
    clint, plic = attach_interrupt_controllers(
        memory, harts=1, time_fn=lambda: emulator.state.instret)
    emulator.interrupt_fn = lambda: clint.pending(0) | plic.pending(0)

    switches = emulator.run(max_steps=200_000)
    done0 = emulator.state.memory.load_int(program.symbol("done0"), 8)
    done1 = emulator.state.memory.load_int(program.symbol("done1"), 8)
    print("tiny preemptive scheduler on the XT-910 model")
    print(f"  both tasks completed: {bool(done0 and done1)}")
    print(f"  context switches: {switches}")
    print(f"  instructions executed: {emulator.state.instret}")
    assert done0 and done1 and switches >= 4


if __name__ == "__main__":
    main()
