"""The paper's AI/ML story (section VII): 16-bit MACs on the vector unit.

XT-910's two 64-bit vector slices sustain 16 16-bit MACs per cycle at
peak — double a Cortex-A73's NEON — and support half-precision floats,
which NEON (ARMv8.0) does not.  This example measures the int16 dot
product three ways and runs an fp16 AXPY.

    python examples/ai_vector_dot.py
"""

from repro.harness import run_on_core
from repro.harness.vecmac import theoretical_macs_per_cycle
from repro.workloads.vector import scalar_mac16, vec_fp16_axpy, vec_mac16


def main() -> None:
    n, passes = 512, 8
    total_macs = n * passes

    print(f"int16 dot product, {n} elements x {passes} passes "
          f"({total_macs} MACs)\n")

    vec = run_on_core(vec_mac16(n=n, unroll_passes=passes).program(),
                      "xt910")
    scalar = run_on_core(scalar_mac16(n=n, unroll_passes=passes).program(),
                         "xt910")
    novec = run_on_core(scalar_mac16(n=n, unroll_passes=passes).program(),
                        "xt910-novec")

    rows = [
        ("vector (vwmacc.vv)", vec.cycles),
        ("scalar (XT mulah)", scalar.cycles),
        ("scalar, no-VEC core", novec.cycles),
    ]
    for label, cycles in rows:
        print(f"  {label:22s} {cycles:6d} cycles "
              f"({total_macs / cycles:5.2f} MACs/cycle)")
    print(f"\n  vector speedup over scalar: "
          f"{scalar.cycles / vec.cycles:.2f}x")
    print(f"  datapath peak: {theoretical_macs_per_cycle()} MACs/cycle "
          f"(paper: 16, 2x the A73's NEON)")

    print("\nfp16 AXPY (not expressible on A73's NEON):")
    fp16 = run_on_core(vec_fp16_axpy(n=64).program(), "xt910")
    print(f"  {fp16.cycles} cycles, "
          f"{fp16.stats.vector_instructions} vector instructions")


if __name__ == "__main__":
    main()
