"""The co-optimized toolchain (section IX / Fig. 20), kernel by kernel.

Compiles an IR kernel with the stock-GCC-like backend and with the
XT-910 backend (indexed loads/stores, induction-variable optimization,
the anchor scheme, DSE), shows the generated code difference, and times
both on the XT-910 model.

    python examples/compiler_optimization.py
"""

import copy

from repro.harness import run_on_core
from repro.toolchain import (
    CodegenOptions,
    Interpreter,
    build_program,
    compile_function,
    fig20_kernels,
)
from repro.toolchain.kernels import saxpy_u32


def main() -> None:
    kernel = saxpy_u32(n=64)
    expected = Interpreter(copy.deepcopy(kernel)).run()

    base_asm = compile_function(copy.deepcopy(kernel),
                                CodegenOptions.base())
    opt_asm = compile_function(copy.deepcopy(kernel),
                               CodegenOptions.optimized())

    def inner_loop(asm: str) -> str:
        lines = asm.splitlines()
        start = next(i for i, l in enumerate(lines) if ".Lloop" in l)
        end = next(i for i in range(start + 1, len(lines))
                   if lines[i].strip().startswith("j .L"))
        return "\n".join(lines[start:end + 1])

    print("saxpy over u32 indices: y[i] += 12 * x[i]\n")
    print("--- base RISC-V backend (inner loop) ---")
    print(inner_loop(base_asm))
    print("\n--- XT backend: indexed loads, mula fusion, pointers ---")
    print(inner_loop(opt_asm))

    print("\ntiming every Fig. 20 kernel on xt910:")
    for fn in fig20_kernels():
        base_r = run_on_core(build_program(copy.deepcopy(fn),
                                           CodegenOptions.base()), "xt910")
        opt_r = run_on_core(build_program(copy.deepcopy(fn),
                                          CodegenOptions.optimized()),
                            "xt910")
        print(f"  {fn.name:18s} {base_r.cycles:6d} -> {opt_r.cycles:6d} "
              f"cycles  ({base_r.cycles / opt_r.cycles:.2f}x)")

    print(f"\n(correctness pinned to the IR interpreter: "
          f"result = {expected})")


if __name__ == "__main__":
    main()
