"""Walkthrough of the RAS subsystem: inject faults, watch them caught.

Three escalating scenarios:

1. a register bit flip caught by the lockstep golden checker, with the
   first-divergence report (PC, differing registers, disassembly);
2. a single-bit cache fault silently corrected by SEC-DED ECC;
3. a double-bit cache fault escalating to a machine-check trap that a
   guest handler banks and recovers from.

    python examples/fault_injection.py
"""

from repro.asm import assemble
from repro.mem.cache import Cache
from repro.ras import (
    FaultInjector,
    FaultPlan,
    FaultTarget,
    check_program,
)
from repro.isa.csr import MCERR_SOURCES
from repro.sim import Emulator

WORKLOAD = """
_start:
    li t0, 500
    li a0, 0
loop:
    addi a0, a0, 3
    addi t0, t0, -1
    bnez t0, loop
    li a7, 93
    ecall
"""


def scenario_lockstep():
    print("=== 1. register flip vs the lockstep golden checker ===")
    program = assemble(WORKLOAD)
    clean = check_program(program)
    print(f"clean run: {clean.steps} instructions, "
          f"divergence={clean.divergence}")

    # Flip bit 5 of a0 (the accumulator) after 100 instructions retire.
    plan = FaultPlan(FaultTarget.XREG, at_instret=100, index=10, bit=5)
    result = check_program(program, injector=FaultInjector(seed=1,
                                                           plans=[plan]))
    print(f"faulted run diverged after {result.divergence.seq} "
          f"instructions:")
    print(result.divergence.render())
    print()


def scenario_ecc():
    print("=== 2. single-bit cache fault, SEC-DED corrects ===")
    cache = Cache("l1d", size=32 << 10, assoc=2, line_size=64)
    cache.fill(0x8000_0000)
    addr = cache.inject_data_fault(addr=0x8000_0000)
    print(f"injected 1-bit fault into line {addr:#x}")
    hit = cache.access(0x8000_0000)
    print(f"next access: hit={hit}, corrected={cache.stats.ecc_corrected}, "
          f"uncorrectable={cache.stats.ecc_uncorrectable}")
    print()


def scenario_machine_check():
    print("=== 3. double-bit fault -> machine check, guest recovers ===")
    guest = assemble("""
        .data
        .align 3
    seen:   .dword 0
        .text
    _start:
        la t0, handler
        csrw mtvec, t0
        li t0, 200
    spin:
        addi t0, t0, -1
        bnez t0, spin
        la t1, seen
        ld a0, 0(t1)
        snez a0, a0
        xori a0, a0, 1
        li a7, 93
        ecall
    handler:
        csrr t2, mcerr
        la t3, seen
        sd t2, 0(t3)
        csrw mcerr, x0
        mret
    """)
    emulator = Emulator(guest)
    cache = Cache("l1d", size=32 << 10, assoc=2, line_size=64)
    cache.on_uncorrectable = lambda addr, name: emulator.post_machine_check(
        addr, source=MCERR_SOURCES["L1D"])

    for _ in range(20):
        emulator.step()
    cache.fill(0xDEAD_0000)
    cache.inject_data_fault(addr=0xDEAD_0000, bits=2)
    cache.access(0xDEAD_0000)        # ECC detects, posts the machine check

    code = emulator.run()
    print(f"guest exit code: {code} "
          f"(0 = handler saw the error and recovered)")
    print(f"machine checks delivered: {emulator.machine_checks}")
    seen = emulator.state.memory.load_int(guest.symbol("seen"), 8)
    print(f"banked mcerr CSR as seen by the guest: {seen:#x}")


if __name__ == "__main__":
    scenario_lockstep()
    scenario_ecc()
    scenario_machine_check()
