"""Tuning the multi-mode multi-stream prefetcher (section V.C, Fig. 21).

Runs STREAM triad at the paper's 200-cycle memory latency across
prefetcher configurations — off, global-mode, multi-stream at several
distances, and with/without TLB prefetch — and prints the speedup
ladder, a self-serve version of the Fig. 21 ablation.

    python examples/prefetch_tuning.py
"""

from dataclasses import replace

from repro.harness import run_on_core
from repro.mem.dram import DramConfig
from repro.mem.hierarchy import MemHierConfig
from repro.mem.prefetch import PrefetchConfig
from repro.uarch.presets import xt910
from repro.workloads.stream import stream_kernel

ELEMS = 16384   # 3 x 128 KiB arrays: overflow the 256 KiB L2 below


def run_config(label: str, l1_pf: PrefetchConfig, l2_pf: PrefetchConfig,
               tlb_prefetch: bool, baseline: int | None) -> int:
    mem = MemHierConfig(
        l2_size=256 << 10,
        dram=DramConfig(latency=200),
        l1_prefetch=l1_pf, l2_prefetch=l2_pf,
        tlb_prefetch=tlb_prefetch, model_tlb=True)
    config = replace(xt910(), mem=mem)
    result = run_on_core(stream_kernel("triad", elems=ELEMS).program(),
                         config)
    h = result.pipeline.hier
    speedup = f"{baseline / result.cycles:5.2f}x" if baseline else "  1.00x"
    print(f"  {label:38s} {result.cycles:7d} cycles {speedup}   "
          f"pf-issued={h.l1_prefetcher.stats.issued:5d} "
          f"l2-misses={h.l2.stats.misses:5d}")
    return result.cycles


def main() -> None:
    print(f"STREAM triad, {ELEMS} elements, 200-cycle DRAM "
          "(the paper's Fig. 21 testbed)\n")
    off = PrefetchConfig.disabled()
    baseline = run_config("no prefetch", off, off, False, None)
    run_config("global mode, distance 8",
               PrefetchConfig.global_mode(distance=8), off, False, baseline)
    for distance in (2, 4, 8, 16):
        run_config(f"multi-stream, distance {distance}",
                   PrefetchConfig(distance=distance, max_depth=32),
                   off, False, baseline)
    run_config("multi d=16 + L2 prefetch + TLB prefetch",
               PrefetchConfig(distance=16, max_depth=32),
               PrefetchConfig(distance=32, max_depth=64), True, baseline)
    run_config("same, TLB prefetch off (Fig. 21 'e')",
               PrefetchConfig(distance=16, max_depth=32),
               PrefetchConfig(distance=32, max_depth=64), False, baseline)


if __name__ == "__main__":
    main()
